//! The RC thermal network and its integrator.
//!
//! One thermal node per core. Vertical resistance `R_v` drains heat to the
//! ambient/heat-sink node; lateral resistance `R_l` couples 4-connected
//! floorplan neighbours. Integration is forward Euler with automatic
//! sub-stepping to keep the explicit scheme stable
//! (`dt_sub < C / (1/R_v + 4/R_l)` with margin).

use crate::floorplan::Floorplan;
use cpm_units::{Celsius, CoreId, Seconds, Watts};

/// Chunk width of the interior-row stencil pass. Eight `f64`s span two
/// AVX2 registers (or four NEON ones); the chunk body is elementwise over
/// fixed strides, which is the shape LLVM's autovectorizer recognizes.
const LANES: usize = 8;

/// The node-constant factors of one Euler substep, hoisted out of the
/// row passes. Resistances and capacitance enter as reciprocals
/// (conductances, `h/C`) so the stencil body is pure multiply-add —
/// divides are the one f64 op whose reciprocal throughput dominates a
/// vectorized loop, and the unhoisted form spent six of them per node.
#[derive(Clone, Copy)]
struct StencilCtx {
    /// Vertical (node→ambient) conductance `1/R_v`.
    g_v: f64,
    /// Lateral (node→node) conductance `1/R_l`.
    g_l: f64,
    ambient: f64,
    /// Substep length over capacitance, `h/C`.
    h_over_cap: f64,
    cols: usize,
}

/// Physical parameters of the RC network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Vertical core→ambient thermal resistance (°C per watt).
    pub r_vertical: f64,
    /// Lateral core→core thermal resistance (°C per watt).
    pub r_lateral: f64,
    /// Per-core thermal capacitance (joules per °C).
    pub capacitance: f64,
    /// Ambient (heat-sink) temperature.
    pub ambient: Celsius,
}

impl ThermalParams {
    /// Defaults giving a ~60 ms thermal time constant and ≈ 2 °C/W vertical
    /// rise — representative of a 90 nm-class core under a capable heat
    /// sink, and fast enough that hotspots develop within a handful of GPM
    /// intervals (which is the timescale §IV-A's policy acts on).
    pub fn paper_default() -> Self {
        Self {
            r_vertical: 2.0,
            r_lateral: 4.0,
            capacitance: 0.03,
            ambient: Celsius::new(45.0),
        }
    }
}

/// The thermal state of the die: one temperature per core node.
///
/// The lateral coupling graph is stored in CSR form (`neighbor_offsets` /
/// `neighbor_links`) so the sub-stepped Euler loop walks one flat array
/// instead of chasing a `Vec<Vec<usize>>` — and the integrator keeps a
/// reusable `scratch` buffer so steady-state stepping never allocates.
#[derive(Debug, Clone)]
pub struct ThermalGrid {
    floorplan: Floorplan,
    params: ThermalParams,
    temperatures: Vec<f64>,
    /// CSR row offsets: node `i`'s neighbours live at
    /// `neighbor_links[neighbor_offsets[i]..neighbor_offsets[i + 1]]`.
    neighbor_offsets: Vec<usize>,
    /// CSR column indices, in the floorplan's neighbour order.
    neighbor_links: Vec<usize>,
    /// Euler double-buffer, reused across steps.
    scratch: Vec<f64>,
}

impl ThermalGrid {
    /// Creates a grid with every node at ambient temperature.
    pub fn new(floorplan: Floorplan, params: ThermalParams) -> Self {
        assert!(params.r_vertical > 0.0 && params.r_lateral > 0.0);
        assert!(params.capacitance > 0.0);
        let n = floorplan.cores();
        let mut neighbor_offsets = Vec::with_capacity(n + 1);
        let mut neighbor_links = Vec::new();
        neighbor_offsets.push(0);
        for i in 0..n {
            neighbor_links.extend(
                floorplan
                    .neighbors(CoreId(i))
                    .into_iter()
                    .map(|c| c.index()),
            );
            neighbor_offsets.push(neighbor_links.len());
        }
        Self {
            temperatures: vec![params.ambient.value(); n],
            floorplan,
            params,
            neighbor_offsets,
            neighbor_links,
            scratch: vec![0.0; n],
        }
    }

    /// The floorplan this grid models.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The physical parameters.
    pub fn params(&self) -> ThermalParams {
        self.params
    }

    /// Current temperature of a core node.
    pub fn temperature(&self, core: CoreId) -> Celsius {
        Celsius::new(self.temperatures[core.index()])
    }

    /// All node temperatures in °C, core-id order, borrowed — the
    /// allocation-free accessor hot paths should prefer.
    pub fn temperatures_deg(&self) -> &[f64] {
        &self.temperatures
    }

    /// The hottest node and its temperature.
    pub fn hottest(&self) -> (CoreId, Celsius) {
        let (i, &t) = self
            .temperatures
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        (CoreId(i), Celsius::new(t))
    }

    /// Resets every node to ambient.
    pub fn reset(&mut self) {
        self.temperatures.fill(self.params.ambient.value());
    }

    /// Advances the network by `dt` with per-core heat input `powers`
    /// (watts, core-id order), sub-stepping as needed for stability.
    ///
    /// The update walks the floorplan row by row, dispatched to a
    /// `LANES`-chunked row pass monomorphized over the row's up/down
    /// coupling (see `ThermalGrid::row_pass`), with the boundary columns
    /// peeled — so the interior is a branch-free elementwise stencil over
    /// four fixed strides instead of a CSR gather, and LLVM autovectorizes
    /// it. Flow terms accumulate in the floorplan's neighbour order (up,
    /// down, left, right) with the same expressions as
    /// [`ThermalGrid::step_reference`], so results are bit-identical to
    /// the reference integrator.
    pub fn step(&mut self, powers: &[Watts], dt: Seconds) {
        assert_eq!(
            powers.len(),
            self.temperatures.len(),
            "one power value per core required"
        );
        let (rows, cols) = (self.floorplan.rows(), self.floorplan.cols());
        let (substeps, h) = self.substep_schedule(dt);
        let ctx = StencilCtx {
            g_v: 1.0 / self.params.r_vertical,
            g_l: 1.0 / self.params.r_lateral,
            ambient: self.params.ambient.value(),
            h_over_cap: h / self.params.capacitance,
            cols,
        };
        let mut next = std::mem::take(&mut self.scratch);
        debug_assert_eq!(next.len(), self.temperatures.len());
        for _ in 0..substeps {
            let temps = &self.temperatures;
            for r in 0..rows {
                // Monomorphize per up/down combination so the chunked
                // interior body carries no per-node branches at all.
                match (r > 0, r + 1 < rows) {
                    (false, false) => {
                        Self::row_pass::<false, false>(temps, powers, &mut next, r, ctx)
                    }
                    (false, true) => {
                        Self::row_pass::<false, true>(temps, powers, &mut next, r, ctx)
                    }
                    (true, false) => {
                        Self::row_pass::<true, false>(temps, powers, &mut next, r, ctx)
                    }
                    (true, true) => Self::row_pass::<true, true>(temps, powers, &mut next, r, ctx),
                }
            }
            std::mem::swap(&mut self.temperatures, &mut next);
        }
        self.scratch = next;
    }

    /// One node's Euler update, with the vertical coupling resolved at
    /// compile time and the lateral coupling by the peeled caller.
    #[inline(always)] // the chunk loop body must inline to vectorize
    fn relax_node<const UP: bool, const DOWN: bool>(
        temps: &[f64],
        powers: &[Watts],
        next: &mut [f64],
        i: usize,
        left: bool,
        right: bool,
        ctx: StencilCtx,
    ) {
        let t = temps[i];
        let mut flow = powers[i].value() - (t - ctx.ambient) * ctx.g_v;
        if UP {
            flow -= (t - temps[i - ctx.cols]) * ctx.g_l;
        }
        if DOWN {
            flow -= (t - temps[i + ctx.cols]) * ctx.g_l;
        }
        if left {
            flow -= (t - temps[i - 1]) * ctx.g_l;
        }
        if right {
            flow -= (t - temps[i + 1]) * ctx.g_l;
        }
        next[i] = t + ctx.h_over_cap * flow;
    }

    /// One row of the Euler substep: peeled left/right edge nodes around a
    /// `LANES`-chunked interior with a scalar tail. Each interior node
    /// evaluates the token-identical [`ThermalGrid::relax_node`] expression
    /// — chunking only fixes the trip count of the elementwise loop, it
    /// never reassociates a node's flow sum — so the pass is bit-identical
    /// to the unchunked walk.
    fn row_pass<const UP: bool, const DOWN: bool>(
        temps: &[f64],
        powers: &[Watts],
        next: &mut [f64],
        r: usize,
        ctx: StencilCtx,
    ) {
        let cols = ctx.cols;
        let base = r * cols;
        Self::relax_node::<UP, DOWN>(temps, powers, next, base, false, cols > 1, ctx);
        let interior_end = cols.saturating_sub(1);
        let mut c = 1;
        while c + LANES <= interior_end {
            for l in 0..LANES {
                Self::relax_node::<UP, DOWN>(temps, powers, next, base + c + l, true, true, ctx);
            }
            c += LANES;
        }
        while c < interior_end {
            Self::relax_node::<UP, DOWN>(temps, powers, next, base + c, true, true, ctx);
            c += 1;
        }
        if cols > 1 {
            Self::relax_node::<UP, DOWN>(temps, powers, next, base + cols - 1, true, false, ctx);
        }
    }

    /// The unfused CSR-gather integrator [`ThermalGrid::step`] replaced —
    /// kept public as the bit-identity reference for the tiled stencil.
    pub fn step_reference(&mut self, powers: &[Watts], dt: Seconds) {
        assert_eq!(
            powers.len(),
            self.temperatures.len(),
            "one power value per core required"
        );
        let p = &self.params;
        let (substeps, h) = self.substep_schedule(dt);
        // The same conductance/`h/C` hoists as the stencil's StencilCtx,
        // expression for expression, to keep the twins bit-identical.
        let g_v = 1.0 / p.r_vertical;
        let g_l = 1.0 / p.r_lateral;
        let h_over_cap = h / p.capacitance;
        let mut next = std::mem::take(&mut self.scratch);
        debug_assert_eq!(next.len(), self.temperatures.len());
        for _ in 0..substeps {
            for i in 0..self.temperatures.len() {
                let t = self.temperatures[i];
                let mut flow = powers[i].value() - (t - p.ambient.value()) * g_v;
                let (lo, hi) = (self.neighbor_offsets[i], self.neighbor_offsets[i + 1]);
                for &j in &self.neighbor_links[lo..hi] {
                    flow -= (t - self.temperatures[j]) * g_l;
                }
                next[i] = t + h_over_cap * flow;
            }
            std::mem::swap(&mut self.temperatures, &mut next);
        }
        self.scratch = next;
    }

    /// Explicit-Euler stability bound on the nodal conductance sum: the
    /// number of substeps covering `dt` and the substep length.
    fn substep_schedule(&self, dt: Seconds) -> (usize, f64) {
        let p = &self.params;
        let g_max = 1.0 / p.r_vertical + 4.0 / p.r_lateral;
        let dt_stable = 0.5 * p.capacitance / g_max;
        let substeps = (dt.value() / dt_stable).ceil().max(1.0) as usize;
        (substeps, dt.value() / substeps as f64)
    }

    /// The analytic steady-state temperature of a *uniformly powered* die:
    /// with equal power everywhere no lateral heat flows, so
    /// `T = T_amb + P·R_v`. Useful for validation.
    pub fn uniform_steady_state(&self, per_core_power: Watts) -> Celsius {
        Celsius::new(self.params.ambient.value() + per_core_power.value() * self.params.r_vertical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x4() -> ThermalGrid {
        ThermalGrid::new(Floorplan::grid(2, 4), ThermalParams::paper_default())
    }

    #[test]
    fn starts_at_ambient() {
        let g = grid_2x4();
        for &t in g.temperatures_deg() {
            assert_eq!(t, 45.0);
        }
    }

    #[test]
    fn uniform_power_reaches_analytic_steady_state() {
        let mut g = grid_2x4();
        let p = vec![Watts::new(10.0); 8];
        // Run well past the ~60 ms time constant.
        for _ in 0..200 {
            g.step(&p, Seconds::from_ms(5.0));
        }
        let expect = g.uniform_steady_state(Watts::new(10.0));
        for &t in g.temperatures_deg() {
            assert!(
                (t - expect.value()).abs() < 0.05,
                "node at {t} °C, expected {expect}"
            );
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut g = grid_2x4();
        g.step(&[Watts::ZERO; 8], Seconds::from_ms(100.0));
        for &t in g.temperatures_deg() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hot_core_heats_its_neighbors_most() {
        let mut g = grid_2x4();
        let mut p = vec![Watts::ZERO; 8];
        p[0] = Watts::new(12.0); // corner core
        for _ in 0..400 {
            g.step(&p, Seconds::from_ms(5.0));
        }
        let t0 = g.temperature(CoreId(0)).value();
        let t1 = g.temperature(CoreId(1)).value(); // adjacent
        let t4 = g.temperature(CoreId(4)).value(); // adjacent (below)
        let t7 = g.temperature(CoreId(7)).value(); // far corner
        assert!(t0 > t1 && t0 > t4, "source is hottest");
        assert!(t1 > t7 && t4 > t7, "adjacent nodes hotter than distant");
        assert!(t1 > 45.5, "lateral coupling must actually conduct heat");
    }

    #[test]
    fn adjacent_hot_pair_exceeds_isolated_hot_cores() {
        // The physical basis of §IV-A: two adjacent cores at high power run
        // hotter than the same two cores placed far apart.
        let params = ThermalParams::paper_default();
        let mut adjacent = ThermalGrid::new(Floorplan::grid(2, 4), params);
        let mut separated = ThermalGrid::new(Floorplan::grid(2, 4), params);
        let mut pa = vec![Watts::new(1.0); 8];
        pa[0] = Watts::new(12.0);
        pa[1] = Watts::new(12.0); // neighbours
        let mut ps = vec![Watts::new(1.0); 8];
        ps[0] = Watts::new(12.0);
        ps[7] = Watts::new(12.0); // opposite corners
        for _ in 0..400 {
            adjacent.step(&pa, Seconds::from_ms(5.0));
            separated.step(&ps, Seconds::from_ms(5.0));
        }
        let peak_adj = adjacent.hottest().1.value();
        let peak_sep = separated.hottest().1.value();
        assert!(
            peak_adj > peak_sep + 0.3,
            "adjacent pair {peak_adj} should exceed separated {peak_sep}"
        );
    }

    #[test]
    fn step_is_stable_for_large_dt() {
        // A huge dt must be sub-stepped, not explode.
        let mut g = grid_2x4();
        g.step(&[Watts::new(10.0); 8], Seconds::new(5.0));
        for &t in g.temperatures_deg() {
            assert!(t.is_finite());
            assert!(t < 100.0, "temperature {t} °C diverged");
        }
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut g = grid_2x4();
        g.step(&[Watts::new(10.0); 8], Seconds::new(1.0));
        g.reset();
        for &t in g.temperatures_deg() {
            assert_eq!(t, 45.0);
        }
    }

    #[test]
    fn hottest_reports_argmax() {
        let mut g = grid_2x4();
        let mut p = vec![Watts::ZERO; 8];
        p[5] = Watts::new(8.0);
        g.step(&p, Seconds::from_ms(50.0));
        assert_eq!(g.hottest().0, CoreId(5));
    }

    #[test]
    #[should_panic(expected = "one power value per core")]
    fn wrong_power_length_panics() {
        grid_2x4().step(&[Watts::ZERO; 3], Seconds::from_ms(1.0));
    }

    #[test]
    #[should_panic(expected = "one power value per core")]
    fn wrong_power_length_panics_in_reference() {
        grid_2x4().step_reference(&[Watts::ZERO; 3], Seconds::from_ms(1.0));
    }

    /// The tiled stencil must agree with the CSR reference to the last bit,
    /// on every grid shape the stencil specializes (single row, single
    /// column, even/odd widths, the kilocore 32×32 floorplan).
    #[test]
    fn tiled_stencil_is_bit_identical_to_reference() {
        use cpm_rng::Xoshiro256pp;
        // Widths straddle the lane width: interiors of 0, 3, 9, and 15
        // columns exercise the empty, tail-only, chunk+tail, and
        // multi-chunk paths of the chunked row pass.
        for &(rows, cols) in &[
            (1, 1),
            (1, 5),
            (5, 1),
            (2, 4),
            (3, 3),
            (3, 11),
            (2, 17),
            (4, 8),
            (32, 32),
        ] {
            let params = ThermalParams::paper_default();
            let mut tiled = ThermalGrid::new(Floorplan::grid(rows, cols), params);
            let mut reference = tiled.clone();
            let mut rng = Xoshiro256pp::seed_from_u64(rows as u64 * 1000 + cols as u64);
            let n = rows * cols;
            let mut powers = vec![Watts::ZERO; n];
            for step in 0..50 {
                for p in powers.iter_mut() {
                    *p = Watts::new(rng.f64_in(0.0, 12.0));
                }
                // Mix substep counts: 0.5 ms runs one substep, 40 ms several.
                let dt = if step % 7 == 0 {
                    Seconds::from_ms(40.0)
                } else {
                    Seconds::from_ms(0.5)
                };
                tiled.step(&powers, dt);
                reference.step_reference(&powers, dt);
                for (i, (a, b)) in tiled
                    .temperatures_deg()
                    .iter()
                    .zip(reference.temperatures_deg())
                    .enumerate()
                {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "{rows}×{cols} node {i} diverged at step {step}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// Analytic steady state at the kilocore scale: a uniformly powered
    /// 32×32 die has no lateral flow, so every node settles at
    /// `T = T_amb + P·R_v`.
    #[test]
    fn kilocore_grid_reaches_analytic_steady_state() {
        let mut g = ThermalGrid::new(Floorplan::grid(32, 32), ThermalParams::paper_default());
        let p = vec![Watts::new(7.0); 1024];
        for _ in 0..200 {
            g.step(&p, Seconds::from_ms(5.0));
        }
        let expect = g.uniform_steady_state(Watts::new(7.0));
        assert!((expect.value() - 59.0).abs() < 1e-12, "45 + 7·2 = 59 °C");
        for (i, &t) in g.temperatures_deg().iter().enumerate() {
            assert!(
                (t - expect.value()).abs() < 0.05,
                "node {i} at {t} °C, expected {expect}"
            );
        }
    }

    /// Substep stability on the 32×32 floorplan: whatever dt and power
    /// pattern the controller throws at the grid, automatic sub-stepping
    /// must keep every node finite and below the hottest physically
    /// reachable steady state.
    #[test]
    fn kilocore_substep_stability_property() {
        use cpm_rng::check;
        check::forall_cases("32×32 substep stability", 32, |rng| {
            let mut g = ThermalGrid::new(Floorplan::grid(32, 32), ThermalParams::paper_default());
            let p_max = 12.0;
            let mut powers = vec![Watts::ZERO; 1024];
            for _ in 0..20 {
                for p in powers.iter_mut() {
                    *p = Watts::new(rng.f64_in(0.0, p_max));
                }
                // Spans sub-millisecond PIC intervals through multi-second
                // jumps (thousands of substeps).
                let dt = Seconds::new(rng.f64_in(1e-4, 2.0));
                g.step(&powers, dt);
                let ceiling = g.uniform_steady_state(Watts::new(p_max)).value();
                for &t in g.temperatures_deg() {
                    assert!(t.is_finite(), "diverged at dt {dt:?}");
                    assert!(
                        t >= 45.0 - 1e-9 && t <= ceiling + 1e-9,
                        "node at {t} °C outside [ambient, {ceiling}]"
                    );
                }
            }
        });
    }
}
