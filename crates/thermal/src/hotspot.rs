//! Hotspot (thermal-threshold violation) tracking.
//!
//! §IV-A declares a hotspot when its provisioning constraints are violated;
//! physically a hotspot is a node exceeding the thermal design threshold.
//! [`HotspotTracker`] records per-core violation time against a threshold
//! so policies can be compared by "percentage duration of violations"
//! (Fig. 18(c)).

use cpm_obs::{EventPayload, Recorder, ThermalSource};
use cpm_units::{Celsius, CoreId, Seconds};

/// Accumulates thermal-violation statistics over a run.
#[derive(Debug, Clone)]
pub struct HotspotTracker {
    threshold: Celsius,
    violation_time: Vec<Seconds>,
    total_time: Seconds,
    events: usize,
    in_violation: Vec<bool>,
    recorder: Recorder,
}

impl HotspotTracker {
    /// Creates a tracker over `cores` cores with the given threshold.
    pub fn new(cores: usize, threshold: Celsius) -> Self {
        assert!(cores > 0);
        Self {
            threshold,
            violation_time: vec![Seconds::ZERO; cores],
            total_time: Seconds::ZERO,
            events: 0,
            in_violation: vec![false; cores],
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a flight-recorder handle; each hotspot *onset* (rising
    /// edge of a core crossing the threshold) then emits a
    /// [`EventPayload::ThermalViolation`] with the die-threshold source.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Celsius {
        self.threshold
    }

    /// Records one observation interval of length `dt` with the given node
    /// temperatures (core-id order).
    pub fn observe(&mut self, temperatures: &[Celsius], dt: Seconds) {
        assert_eq!(temperatures.len(), self.violation_time.len());
        self.total_time += dt;
        for (i, &t) in temperatures.iter().enumerate() {
            let hot = t > self.threshold;
            if hot {
                self.violation_time[i] += dt;
                if !self.in_violation[i] {
                    self.events += 1; // rising edge = new hotspot event
                    self.recorder.record(EventPayload::ThermalViolation {
                        source: ThermalSource::DieThreshold,
                        island: i as u32,
                        partner: u32::MAX,
                        value: t.value(),
                        limit: self.threshold.value(),
                    });
                }
            }
            self.in_violation[i] = hot;
        }
    }

    /// Total observed time.
    pub fn total_time(&self) -> Seconds {
        self.total_time
    }

    /// Number of distinct hotspot events (rising edges across all cores).
    pub fn events(&self) -> usize {
        self.events
    }

    /// Violation time for one core.
    pub fn violation_time(&self, core: CoreId) -> Seconds {
        self.violation_time[core.index()]
    }

    /// Fraction of observed time that *any* specific core spent above the
    /// threshold, averaged over cores — the Fig. 18(c) metric.
    pub fn violation_fraction(&self) -> f64 {
        if self.total_time.value() == 0.0 {
            return 0.0;
        }
        let sum: f64 = self.violation_time.iter().map(|t| t.value()).sum();
        sum / (self.total_time.value() * self.violation_time.len() as f64)
    }

    /// Fraction of observed time the *worst* core spent above threshold.
    pub fn worst_core_violation_fraction(&self) -> f64 {
        if self.total_time.value() == 0.0 {
            return 0.0;
        }
        self.violation_time
            .iter()
            .map(|t| t.value() / self.total_time.value())
            .fold(0.0, f64::max)
    }

    /// True when no violation was ever observed.
    pub fn is_clean(&self) -> bool {
        self.events == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temps(vals: &[f64]) -> Vec<Celsius> {
        vals.iter().map(|&v| Celsius::new(v)).collect()
    }

    #[test]
    fn clean_run_reports_no_violations() {
        let mut tr = HotspotTracker::new(4, Celsius::new(85.0));
        for _ in 0..10 {
            tr.observe(&temps(&[60.0, 70.0, 80.0, 84.9]), Seconds::from_ms(1.0));
        }
        assert!(tr.is_clean());
        assert_eq!(tr.events(), 0);
        assert_eq!(tr.violation_fraction(), 0.0);
    }

    #[test]
    fn violation_time_accumulates_per_core() {
        let mut tr = HotspotTracker::new(2, Celsius::new(85.0));
        tr.observe(&temps(&[90.0, 60.0]), Seconds::from_ms(2.0));
        tr.observe(&temps(&[90.0, 60.0]), Seconds::from_ms(2.0));
        tr.observe(&temps(&[60.0, 60.0]), Seconds::from_ms(2.0));
        assert!((tr.violation_time(CoreId(0)).ms() - 4.0).abs() < 1e-12);
        assert_eq!(tr.violation_time(CoreId(1)), Seconds::ZERO);
        // 4 ms of 6 ms on one of two cores → (4+0)/(6·2) = 1/3.
        assert!((tr.violation_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((tr.worst_core_violation_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rising_edges_count_events() {
        let mut tr = HotspotTracker::new(1, Celsius::new(85.0));
        let hot = temps(&[90.0]);
        let cool = temps(&[60.0]);
        let dt = Seconds::from_ms(1.0);
        tr.observe(&hot, dt); // event 1
        tr.observe(&hot, dt); // still the same event
        tr.observe(&cool, dt);
        tr.observe(&hot, dt); // event 2
        assert_eq!(tr.events(), 2);
    }

    #[test]
    fn threshold_is_exclusive() {
        let mut tr = HotspotTracker::new(1, Celsius::new(85.0));
        tr.observe(&temps(&[85.0]), Seconds::from_ms(1.0));
        assert!(tr.is_clean(), "exactly at threshold is not a violation");
    }

    #[test]
    fn empty_observation_time_is_zero_fraction() {
        let tr = HotspotTracker::new(3, Celsius::new(85.0));
        assert_eq!(tr.violation_fraction(), 0.0);
        assert_eq!(tr.worst_core_violation_fraction(), 0.0);
    }

    #[test]
    #[should_panic]
    fn wrong_temperature_length_panics() {
        HotspotTracker::new(2, Celsius::new(85.0)).observe(&temps(&[50.0]), Seconds::from_ms(1.0));
    }
}
