//! Core placement on the die and the neighbour relation used for lateral
//! heat flow and for the thermal-aware policy's "nearby cores" constraint.
//!
//! Cores sit on a regular `rows × cols` grid (Fig. 1 arranges islands
//! around the shared last-level cache; the thermal coupling that matters is
//! core-to-core adjacency, which a grid captures). Core ids are assigned
//! row-major.

use cpm_units::CoreId;

/// A rectangular grid floorplan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floorplan {
    rows: usize,
    cols: usize,
}

impl Floorplan {
    /// Creates a `rows × cols` grid with at least one core.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "floorplan must contain cores");
        Self { rows, cols }
    }

    /// A near-square grid for `n` cores: `ceil(n / cols)` rows of
    /// `cols = ceil(sqrt(n))` columns. Panics unless the grid is exactly
    /// filled (n must factor into the chosen shape); use [`Floorplan::grid`]
    /// for irregular counts.
    pub fn for_cores(n: usize) -> Self {
        assert!(n > 0);
        // Prefer the squarest exact factorization.
        let mut best = (1, n);
        let mut r = 1;
        while r * r <= n {
            if n % r == 0 {
                best = (r, n / r);
            }
            r += 1;
        }
        Self::grid(best.0, best.1)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cores.
    pub fn cores(&self) -> usize {
        self.rows * self.cols
    }

    /// The `(row, col)` position of a core. Panics when out of range.
    pub fn position(&self, core: CoreId) -> (usize, usize) {
        assert!(core.index() < self.cores(), "core {core} outside floorplan");
        (core.index() / self.cols, core.index() % self.cols)
    }

    /// The core at `(row, col)`.
    pub fn core_at(&self, row: usize, col: usize) -> CoreId {
        assert!(row < self.rows && col < self.cols);
        CoreId(row * self.cols + col)
    }

    /// The 4-connected (Manhattan) neighbours of a core.
    pub fn neighbors(&self, core: CoreId) -> Vec<CoreId> {
        let (r, c) = self.position(core);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.core_at(r - 1, c));
        }
        if r + 1 < self.rows {
            out.push(self.core_at(r + 1, c));
        }
        if c > 0 {
            out.push(self.core_at(r, c - 1));
        }
        if c + 1 < self.cols {
            out.push(self.core_at(r, c + 1));
        }
        out
    }

    /// True when two cores are 4-connected neighbours.
    pub fn are_adjacent(&self, a: CoreId, b: CoreId) -> bool {
        let (ra, ca) = self.position(a);
        let (rb, cb) = self.position(b);
        ra.abs_diff(rb) + ca.abs_diff(cb) == 1
    }

    /// Manhattan distance between two cores.
    pub fn distance(&self, a: CoreId, b: CoreId) -> usize {
        let (ra, ca) = self.position(a);
        let (rb, cb) = self.position(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_row_major() {
        let fp = Floorplan::grid(2, 4);
        assert_eq!(fp.position(CoreId(0)), (0, 0));
        assert_eq!(fp.position(CoreId(3)), (0, 3));
        assert_eq!(fp.position(CoreId(4)), (1, 0));
        assert_eq!(fp.core_at(1, 2), CoreId(6));
    }

    #[test]
    fn corner_edge_center_neighbor_counts() {
        let fp = Floorplan::grid(3, 3);
        assert_eq!(fp.neighbors(CoreId(0)).len(), 2); // corner
        assert_eq!(fp.neighbors(CoreId(1)).len(), 3); // edge
        assert_eq!(fp.neighbors(CoreId(4)).len(), 4); // center
    }

    #[test]
    fn adjacency_is_symmetric() {
        let fp = Floorplan::grid(2, 4);
        for a in 0..fp.cores() {
            for b in 0..fp.cores() {
                assert_eq!(
                    fp.are_adjacent(CoreId(a), CoreId(b)),
                    fp.are_adjacent(CoreId(b), CoreId(a))
                );
            }
        }
    }

    #[test]
    fn adjacency_matches_neighbors() {
        let fp = Floorplan::grid(2, 4);
        for a in 0..fp.cores() {
            for n in fp.neighbors(CoreId(a)) {
                assert!(fp.are_adjacent(CoreId(a), n));
                assert_eq!(fp.distance(CoreId(a), n), 1);
            }
        }
    }

    #[test]
    fn for_cores_produces_exact_squarest_grid() {
        let fp8 = Floorplan::for_cores(8);
        assert_eq!((fp8.rows(), fp8.cols()), (2, 4));
        let fp16 = Floorplan::for_cores(16);
        assert_eq!((fp16.rows(), fp16.cols()), (4, 4));
        let fp32 = Floorplan::for_cores(32);
        assert_eq!((fp32.rows(), fp32.cols()), (4, 8));
        assert_eq!(Floorplan::for_cores(7).cores(), 7);
    }

    #[test]
    fn no_self_adjacency() {
        let fp = Floorplan::grid(2, 2);
        assert!(!fp.are_adjacent(CoreId(1), CoreId(1)));
        assert_eq!(fp.distance(CoreId(1), CoreId(1)), 0);
    }

    #[test]
    #[should_panic(expected = "outside floorplan")]
    fn out_of_range_core_panics() {
        Floorplan::grid(2, 2).position(CoreId(4));
    }
}
