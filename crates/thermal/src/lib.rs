//! Lumped-RC thermal modeling of a CMP die.
//!
//! The paper's thermal-aware provisioning policy (§IV-A) reasons about
//! *hotspots*: sustained high power on physically adjacent cores heats a
//! region of the die past safe limits. That requires a spatially-coupled
//! thermal substrate, which the paper gets implicitly from its simulation
//! stack; we build the standard reduced-order equivalent — one RC node per
//! core with a vertical resistance to the heat sink and lateral resistances
//! between floorplan neighbours:
//!
//! ```text
//! C·dTᵢ/dt = Pᵢ − (Tᵢ − T_amb)/R_v − Σ_{j∈nbr(i)} (Tᵢ − Tⱼ)/R_l
//! ```
//!
//! * [`floorplan`] — 2-D grid placement of cores and their adjacency,
//! * [`grid`] — the RC network and its forward-Euler integrator,
//! * [`hotspot`] — threshold-violation tracking over time.

pub mod floorplan;
pub mod grid;
pub mod hotspot;

pub use floorplan::Floorplan;
pub use grid::{ThermalGrid, ThermalParams};
pub use hotspot::HotspotTracker;
