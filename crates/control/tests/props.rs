//! Property-based tests for the control-theory toolkit, on the in-tree
//! `cpm_rng::check` harness.

use cpm_control::jury::{jury_test, JuryResult};
use cpm_control::{analysis, closed_loop, Pid, PidGains, Polynomial, TransferFunction};
use cpm_rng::{check, Xoshiro256pp};

/// Small real coefficients that keep evaluation well-conditioned.
fn coeffs(rng: &mut Xoshiro256pp, min_len: usize, max_len: usize) -> Vec<f64> {
    check::vec_f64(rng, -5.0, 5.0, min_len, max_len)
}

/// A root comfortably inside/outside the unit circle (avoids the boundary).
fn real_root(rng: &mut Xoshiro256pp) -> f64 {
    match rng.below(3) {
        0 => rng.f64_in(-0.95, 0.95),
        1 => rng.f64_in(1.05, 3.0),
        _ => rng.f64_in(-3.0, -1.05),
    }
}

#[test]
fn polynomial_product_evaluates_pointwise() {
    check::forall("poly product pointwise", |rng| {
        let pa = Polynomial::new(coeffs(rng, 1, 5));
        let pb = Polynomial::new(coeffs(rng, 1, 5));
        let x = rng.f64_in(-3.0, 3.0);
        let prod = &pa * &pb;
        let direct = pa.eval(x) * pb.eval(x);
        assert!((prod.eval(x) - direct).abs() < 1e-6 * (1.0 + direct.abs()));
    });
}

#[test]
fn polynomial_sum_evaluates_pointwise() {
    check::forall("poly sum pointwise", |rng| {
        let pa = Polynomial::new(coeffs(rng, 1, 6));
        let pb = Polynomial::new(coeffs(rng, 1, 6));
        let x = rng.f64_in(-3.0, 3.0);
        let sum = &pa + &pb;
        assert!((sum.eval(x) - (pa.eval(x) + pb.eval(x))).abs() < 1e-9);
    });
}

#[test]
fn roots_of_constructed_polynomial_are_recovered() {
    check::forall("roots recovered", |rng| {
        let mut rs: Vec<f64> = (0..rng.usize_in(1, 6)).map(|_| real_root(rng)).collect();
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Keep roots pairwise separated so multiplicity doesn't slow
        // convergence below test tolerance.
        if rs.windows(2).any(|w| (w[1] - w[0]).abs() <= 0.05) {
            return;
        }
        let p = Polynomial::from_roots(&rs);
        let complex_roots = cpm_control::roots::roots(&p);
        let mut found = Vec::with_capacity(complex_roots.len());
        for z in complex_roots {
            assert!(z.im.abs() < 1e-5, "spurious complex root {z}");
            found.push(z.re);
        }
        found.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (f, r) in found.iter().zip(&rs) {
            assert!((f - r).abs() < 1e-4, "root {f} vs {r}");
        }
    });
}

#[test]
fn stability_test_agrees_with_construction() {
    check::forall("stability vs construction", |rng| {
        let inside = check::vec_f64(rng, -0.9, 0.9, 1, 5);
        let outside = rng.f64_in(1.05, 2.0);
        let stable = Polynomial::from_roots(&inside);
        assert!(cpm_control::roots::all_roots_in_unit_circle(&stable));
        let mut with_outlier = inside.clone();
        with_outlier.push(outside);
        let unstable = Polynomial::from_roots(&with_outlier);
        assert!(!cpm_control::roots::all_roots_in_unit_circle(&unstable));
    });
}

#[test]
fn stable_tf_step_response_converges_to_dc_gain() {
    check::forall("step response dc gain", |rng| {
        let pole1 = rng.f64_in(-0.8, 0.8);
        let pole2 = rng.f64_in(-0.8, 0.8);
        let num = rng.f64_in(0.1, 2.0);
        let den = Polynomial::from_roots(&[pole1, pole2]);
        let tf = TransferFunction::new(Polynomial::constant(num), den);
        if !tf.is_stable() {
            return;
        }
        let dc = tf.dc_gain();
        if !dc.is_finite() {
            return;
        }
        let y = tf.step_response(400);
        assert!(
            (y[399] - dc).abs() < 1e-3 * (1.0 + dc.abs()),
            "final {} vs dc {}",
            y[399],
            dc
        );
    });
}

#[test]
fn pid_integral_respects_its_clamp() {
    check::forall("pid integral clamp", |rng| {
        let errors = check::vec_f64(rng, -10.0, 10.0, 1, 100);
        let limit = rng.f64_in(0.1, 5.0);
        let mut pid = Pid::new(PidGains::paper()).with_integral_limit(limit);
        for e in errors {
            pid.step(e);
            assert!(pid.integral().abs() <= limit + 1e-12);
        }
    });
}

#[test]
fn pid_output_is_linear_in_error_scale() {
    check::forall("pid linearity", |rng| {
        let errors = check::vec_f64(rng, -2.0, 2.0, 1, 30);
        let scale = rng.f64_in(0.1, 5.0);
        // With no clamping, PID is a linear operator: scaling the error
        // sequence scales the output sequence.
        let mut a = Pid::new(PidGains::paper());
        let mut b = Pid::new(PidGains::paper());
        for e in &errors {
            let ua = a.step(*e);
            let ub = b.step(*e * scale);
            assert!((ub - ua * scale).abs() < 1e-9 * (1.0 + ua.abs() * scale));
        }
    });
}

#[test]
fn jury_agrees_with_the_root_finder() {
    check::forall("jury vs roots", |rng| {
        let roots: Vec<f64> = (0..rng.usize_in(1, 6)).map(|_| real_root(rng)).collect();
        let p = Polynomial::from_roots(&roots);
        let radius = cpm_control::roots::spectral_radius(&p);
        if (radius - 1.0).abs() <= 1e-3 {
            return; // skip near-circle cases
        }
        match jury_test(&p) {
            JuryResult::Stable => assert!(radius < 1.0, "jury stable but radius {radius}"),
            JuryResult::Unstable => assert!(radius > 1.0, "jury unstable but radius {radius}"),
            JuryResult::Marginal => {} // numerically indeterminate — no claim
        }
    });
}

#[test]
fn closed_loop_is_stable_within_the_gain_margin() {
    let margin = analysis::gain_margin(PidGains::paper(), 0.79, 1e-3);
    check::forall("stable within margin", |rng| {
        let frac = rng.f64_in(0.05, 0.95);
        let cl = closed_loop(PidGains::paper(), frac * margin * 0.79);
        assert!(
            cl.is_stable(),
            "g = {} within margin {}",
            frac * margin,
            margin
        );
    });
}

#[test]
fn step_metrics_overshoot_nonnegative_and_consistent() {
    check::forall("step metrics overshoot", |rng| {
        let y = check::vec_f64(rng, 0.0, 3.0, 2, 50);
        let m = analysis::step_metrics(&y, 1.0, 0.05);
        assert!(m.overshoot >= 0.0);
        let peak = y.iter().cloned().fold(f64::MIN, f64::max);
        assert!((m.overshoot - (peak - 1.0).max(0.0)).abs() < 1e-12);
        if let Some(k) = m.settling_steps {
            for v in &y[k..] {
                assert!((v - 1.0).abs() <= 0.05 + 1e-12);
            }
        }
    });
}
