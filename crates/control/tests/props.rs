//! Property-based tests for the control-theory toolkit.

use cpm_control::jury::{jury_test, JuryResult};
use cpm_control::{analysis, closed_loop, Pid, PidGains, Polynomial, TransferFunction};
use proptest::prelude::*;

/// Small real coefficients that keep evaluation well-conditioned.
fn coeff() -> impl Strategy<Value = f64> {
    (-5.0..5.0f64).prop_filter("nonzero-ish", |c| c.abs() > 1e-6 || *c == 0.0)
}

/// Roots comfortably inside/outside the unit circle (avoids the boundary).
fn real_root() -> impl Strategy<Value = f64> {
    prop_oneof![(-0.95..0.95f64), (1.05..3.0f64), (-3.0..-1.05f64)]
}

proptest! {
    #[test]
    fn polynomial_product_evaluates_pointwise(
        a in prop::collection::vec(coeff(), 1..5),
        b in prop::collection::vec(coeff(), 1..5),
        x in -3.0..3.0f64,
    ) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let prod = &pa * &pb;
        let direct = pa.eval(x) * pb.eval(x);
        prop_assert!((prod.eval(x) - direct).abs() < 1e-6 * (1.0 + direct.abs()));
    }

    #[test]
    fn polynomial_sum_evaluates_pointwise(
        a in prop::collection::vec(coeff(), 1..6),
        b in prop::collection::vec(coeff(), 1..6),
        x in -3.0..3.0f64,
    ) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let sum = &pa + &pb;
        prop_assert!((sum.eval(x) - (pa.eval(x) + pb.eval(x))).abs() < 1e-9);
    }

    #[test]
    fn roots_of_constructed_polynomial_are_recovered(
        roots in prop::collection::vec(real_root(), 1..6),
    ) {
        // Keep roots pairwise separated so multiplicity doesn't slow
        // convergence below test tolerance.
        let mut rs = roots.clone();
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assume!(rs.windows(2).all(|w| (w[1] - w[0]).abs() > 0.05));
        let p = Polynomial::from_roots(&rs);
        let complex_roots = cpm_control::roots::roots(&p);
        let mut found = Vec::with_capacity(complex_roots.len());
        for z in complex_roots {
            prop_assert!(z.im.abs() < 1e-5, "spurious complex root {z}");
            found.push(z.re);
        }
        found.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (f, r) in found.iter().zip(&rs) {
            prop_assert!((f - r).abs() < 1e-4, "root {f} vs {r}");
        }
    }

    #[test]
    fn stability_test_agrees_with_construction(
        inside in prop::collection::vec(-0.9..0.9f64, 1..5),
        outside in 1.05..2.0f64,
    ) {
        let stable = Polynomial::from_roots(&inside);
        prop_assert!(cpm_control::roots::all_roots_in_unit_circle(&stable));
        let mut with_outlier = inside.clone();
        with_outlier.push(outside);
        let unstable = Polynomial::from_roots(&with_outlier);
        prop_assert!(!cpm_control::roots::all_roots_in_unit_circle(&unstable));
    }

    #[test]
    fn stable_tf_step_response_converges_to_dc_gain(
        pole1 in -0.8..0.8f64,
        pole2 in -0.8..0.8f64,
        num in 0.1..2.0f64,
    ) {
        let den = Polynomial::from_roots(&[pole1, pole2]);
        let tf = TransferFunction::new(Polynomial::constant(num), den);
        prop_assume!(tf.is_stable());
        let dc = tf.dc_gain();
        prop_assume!(dc.is_finite());
        let y = tf.step_response(400);
        prop_assert!(
            (y[399] - dc).abs() < 1e-3 * (1.0 + dc.abs()),
            "final {} vs dc {}", y[399], dc
        );
    }

    #[test]
    fn pid_integral_respects_its_clamp(
        errors in prop::collection::vec(-10.0..10.0f64, 1..100),
        limit in 0.1..5.0f64,
    ) {
        let mut pid = Pid::new(PidGains::paper()).with_integral_limit(limit);
        for e in errors {
            pid.step(e);
            prop_assert!(pid.integral().abs() <= limit + 1e-12);
        }
    }

    #[test]
    fn pid_output_is_linear_in_error_scale(
        errors in prop::collection::vec(-2.0..2.0f64, 1..30),
        scale in 0.1..5.0f64,
    ) {
        // With no clamping, PID is a linear operator: scaling the error
        // sequence scales the output sequence.
        let mut a = Pid::new(PidGains::paper());
        let mut b = Pid::new(PidGains::paper());
        for e in &errors {
            let ua = a.step(*e);
            let ub = b.step(*e * scale);
            prop_assert!((ub - ua * scale).abs() < 1e-9 * (1.0 + ua.abs() * scale));
        }
    }

    #[test]
    fn jury_agrees_with_the_root_finder(
        roots in prop::collection::vec(real_root(), 1..6),
    ) {
        let p = Polynomial::from_roots(&roots);
        let radius = cpm_control::roots::spectral_radius(&p);
        prop_assume!((radius - 1.0).abs() > 1e-3, "skip near-circle cases");
        match jury_test(&p) {
            JuryResult::Stable => prop_assert!(radius < 1.0, "jury stable but radius {radius}"),
            JuryResult::Unstable => prop_assert!(radius > 1.0, "jury unstable but radius {radius}"),
            JuryResult::Marginal => {} // numerically indeterminate — no claim
        }
    }

    #[test]
    fn closed_loop_is_stable_within_the_gain_margin(
        frac in 0.05..0.95f64,
    ) {
        let margin = analysis::gain_margin(PidGains::paper(), 0.79, 1e-3);
        let cl = closed_loop(PidGains::paper(), frac * margin * 0.79);
        prop_assert!(cl.is_stable(), "g = {} within margin {}", frac * margin, margin);
    }

    #[test]
    fn step_metrics_overshoot_nonnegative_and_consistent(
        y in prop::collection::vec(0.0..3.0f64, 2..50),
    ) {
        let m = analysis::step_metrics(&y, 1.0, 0.05);
        prop_assert!(m.overshoot >= 0.0);
        let peak = y.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((m.overshoot - (peak - 1.0).max(0.0)).abs() < 1e-12);
        if let Some(k) = m.settling_steps {
            for v in &y[k..] {
                prop_assert!((v - 1.0).abs() <= 0.05 + 1e-12);
            }
        }
    }
}
