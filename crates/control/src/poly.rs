//! Dense univariate polynomials over `f64`, stored with ascending
//! coefficients: `coeffs[k]` multiplies `x^k`.
//!
//! Polynomials are kept *trimmed* — the leading coefficient is nonzero
//! (except for the zero polynomial, represented as `[0.0]`) — so `degree()`
//! is always meaningful.

use crate::complex::Complex;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Tolerance below which a leading coefficient is considered zero.
const TRIM_EPS: f64 = 1e-300;

/// A dense polynomial `c₀ + c₁x + c₂x² + …`.
///
/// ```
/// use cpm_control::Polynomial;
///
/// // (x - 1)(x - 2) = x² - 3x + 2
/// let p = Polynomial::from_roots(&[1.0, 2.0]);
/// assert_eq!(p.coefficients(), &[2.0, -3.0, 1.0]);
/// assert_eq!(p.eval(1.0), 0.0);
/// assert_eq!(p.derivative().coefficients(), &[-3.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients, trimming
    /// (exactly-)zero leading terms.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Self { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: vec![0.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self::new(vec![c])
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Self::new(vec![0.0, 1.0])
    }

    /// Builds the monic polynomial with the given real roots:
    /// `(x − r₁)(x − r₂)…`.
    pub fn from_roots(roots: &[f64]) -> Self {
        roots.iter().fold(Self::constant(1.0), |acc, &r| {
            acc * Self::new(vec![-r, 1.0])
        })
    }

    fn trim(&mut self) {
        while self.coeffs.len() > 1 {
            let last = *self.coeffs.last().unwrap();
            if last.abs() <= TRIM_EPS {
                self.coeffs.pop();
            } else {
                break;
            }
        }
        if self.coeffs.is_empty() {
            self.coeffs.push(0.0);
        }
    }

    /// Ascending coefficients (`[k]` multiplies `x^k`). Always non-empty.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The degree; 0 for constants (including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// True when this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.len() == 1 && self.coeffs[0] == 0.0
    }

    /// The coefficient of the highest-degree term.
    pub fn leading_coefficient(&self) -> f64 {
        *self.coeffs.last().unwrap()
    }

    /// Evaluates at a real point using Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point using Horner's rule.
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + Complex::real(c))
    }

    /// The formal derivative.
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::zero();
        }
        Self::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64)
                .collect(),
        )
    }

    /// Multiplies every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Self {
        Self::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Returns the monic version (leading coefficient 1). Panics on the zero
    /// polynomial.
    pub fn monic(&self) -> Self {
        assert!(!self.is_zero(), "the zero polynomial cannot be made monic");
        self.scale(1.0 / self.leading_coefficient())
    }

    /// Multiplies by `x^k` (shifts coefficients up).
    pub fn mul_xk(&self, k: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![0.0; k];
        coeffs.extend_from_slice(&self.coeffs);
        Self::new(coeffs)
    }

    /// Largest absolute coefficient (∞-norm), used for conditioning checks.
    pub fn max_abs_coefficient(&self) -> f64 {
        self.coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()))
    }
}

impl Add for Polynomial {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        &self + &rhs
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: Self) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![0.0; n];
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.coeffs.get(k).copied().unwrap_or(0.0)
                + rhs.coeffs.get(k).copied().unwrap_or(0.0);
        }
        Polynomial::new(out)
    }
}

impl Sub for Polynomial {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        &self - &rhs
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: Self) -> Polynomial {
        self + &(-rhs.clone())
    }
}

impl Neg for Polynomial {
    type Output = Self;
    fn neg(self) -> Self {
        self.scale(-1.0)
    }
}

impl Mul for Polynomial {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        &self * &rhs
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: Self) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.degree() > 0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match k {
                0 => write!(f, "{a:.4}")?,
                1 => write!(f, "{a:.4}·z")?,
                _ => write!(f, "{a:.4}·z^{k}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_leading_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coefficients(), &[1.0, 2.0]);
    }

    #[test]
    fn zero_polynomial_properties() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(17.0), 0.0);
        assert!(z.derivative().is_zero());
    }

    #[test]
    fn eval_horner() {
        // p(x) = 2 - 3x + x²; p(2) = 2 - 6 + 4 = 0, p(1) = 0
        let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
        assert_eq!(p.eval(2.0), 0.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(0.0), 2.0);
    }

    #[test]
    fn eval_complex_matches_real_on_real_axis() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 3.0]);
        for x in [-2.0, -0.5, 0.0, 1.3, 4.0] {
            let zr = p.eval_complex(Complex::real(x));
            assert!((zr.re - p.eval(x)).abs() < 1e-12);
            assert!(zr.im.abs() < 1e-12);
        }
    }

    #[test]
    fn add_sub_mul() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        let sum = &a + &b;
        assert_eq!(sum.coefficients(), &[0.0, 2.0]);
        let prod = &a * &b; // x² - 1
        assert_eq!(prod.coefficients(), &[-1.0, 0.0, 1.0]);
        let diff = &a - &b;
        assert_eq!(diff.coefficients(), &[2.0]);
    }

    #[test]
    fn cancellation_trims() {
        let a = Polynomial::new(vec![0.0, 0.0, 1.0]);
        let b = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let d = &b - &a;
        assert_eq!(d.degree(), 0);
        assert_eq!(d.coefficients(), &[1.0]);
    }

    #[test]
    fn derivative_rule() {
        // d/dx (1 + 2x + 3x²) = 2 + 6x
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.derivative().coefficients(), &[2.0, 6.0]);
    }

    #[test]
    fn from_roots_expands() {
        // (x-1)(x-2) = x² - 3x + 2
        let p = Polynomial::from_roots(&[1.0, 2.0]);
        assert_eq!(p.coefficients(), &[2.0, -3.0, 1.0]);
        assert!(p.eval(1.0).abs() < 1e-12);
        assert!(p.eval(2.0).abs() < 1e-12);
    }

    #[test]
    fn monic_normalizes_leading_coefficient() {
        let p = Polynomial::new(vec![2.0, 4.0]).monic();
        assert_eq!(p.coefficients(), &[0.5, 1.0]);
    }

    #[test]
    fn mul_xk_shifts() {
        let p = Polynomial::new(vec![3.0, 1.0]).mul_xk(2);
        assert_eq!(p.coefficients(), &[0.0, 0.0, 3.0, 1.0]);
        assert!(Polynomial::zero().mul_xk(3).is_zero());
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::new(vec![0.237, -0.79, 0.869]);
        let s = p.to_string();
        assert!(s.contains("z^2"), "{s}");
    }
}
