//! The Jury stability criterion: an *algebraic* test that all roots of a
//! real polynomial lie strictly inside the unit circle, without computing
//! them.
//!
//! §II-D mentions that the design parameters "can be computed accurately
//! given a system model and design specifications … through the
//! application of stability criterion"; Jury's table is the discrete-time
//! counterpart of Routh–Hurwitz and the standard such criterion. It also
//! cross-validates the Aberth–Ehrlich root finder in tests: both must
//! agree on stability for every polynomial.
//!
//! For `P(z) = aₙzⁿ + … + a₀` with `aₙ > 0`, the necessary-and-sufficient
//! conditions are:
//!
//! 1. `P(1) > 0`,
//! 2. `(−1)ⁿ·P(−1) > 0`,
//! 3. `|a₀| < aₙ`,
//! 4. the `n−2` constraints from the Jury table rows (each reduction row
//!    `bₖ = a₀·aₖ − aₙ·a_{n−k}`-style must keep `|b₀| > |b_{n−1}|`, etc.).

use crate::poly::Polynomial;

/// Result of the Jury test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JuryResult {
    /// All roots strictly inside the unit circle.
    Stable,
    /// At least one root on or outside the unit circle.
    Unstable,
    /// A table entry vanished (root exactly on the circle or a singular
    /// table) — the plain criterion cannot decide.
    Marginal,
}

/// Numerical tolerance for treating a table entry as zero relative to the
/// polynomial's coefficient magnitude.
const EPS: f64 = 1e-12;

/// Applies the Jury criterion to `p`. Constants (degree 0) are trivially
/// stable (no roots). Panics on the zero polynomial.
pub fn jury_test(p: &Polynomial) -> JuryResult {
    assert!(!p.is_zero(), "the zero polynomial has no root set");
    let n = p.degree();
    if n == 0 {
        return JuryResult::Stable;
    }
    // Normalize to a positive leading coefficient (roots are unchanged).
    let coeffs: Vec<f64> = if p.leading_coefficient() < 0.0 {
        p.coefficients().iter().map(|c| -c).collect()
    } else {
        p.coefficients().to_vec()
    };
    let scale = coeffs.iter().fold(0.0f64, |m, c| m.max(c.abs()));
    let tol = EPS * scale;

    // Condition 1: P(1) > 0.
    let at_one: f64 = coeffs.iter().sum();
    if at_one <= tol {
        return if at_one.abs() <= tol {
            JuryResult::Marginal
        } else {
            JuryResult::Unstable
        };
    }
    // Condition 2: (−1)ⁿ P(−1) > 0.
    let at_minus_one: f64 = coeffs
        .iter()
        .enumerate()
        .map(|(k, &c)| if k % 2 == 0 { c } else { -c })
        .sum();
    let signed = if n % 2 == 0 {
        at_minus_one
    } else {
        -at_minus_one
    };
    if signed <= tol {
        return if signed.abs() <= tol {
            JuryResult::Marginal
        } else {
            JuryResult::Unstable
        };
    }
    // Condition 3: |a₀| < aₙ.
    if coeffs[0].abs() >= coeffs[n] - tol {
        return if (coeffs[0].abs() - coeffs[n]).abs() <= tol {
            JuryResult::Marginal
        } else {
            JuryResult::Unstable
        };
    }
    // Jury table reduction: row k has entries
    // b_i = a₀·a_i − a_m·a_{m−i} (ascending order), degree drops by one
    // each round; require |b₀| ... the *last* entry dominate:
    // |b_{m−1}| > |b₀| in the descending convention — equivalently, with
    // ascending coefficients c[0..=m], require |c_m| > |c_0| after each
    // reduction.
    let mut row = coeffs;
    while row.len() > 3 {
        let m = row.len() - 1;
        let a0 = row[0];
        let am = row[m];
        let next: Vec<f64> = (0..m).map(|i| am * row[m - i] - a0 * row[i]).collect();
        // `next` is descending-ordered (b₀ corresponds to the highest
        // term); convert to ascending for uniform handling.
        let mut asc: Vec<f64> = next.into_iter().rev().collect();
        // Strip exact-zero leading entries cautiously.
        let lead = asc.last().copied().unwrap_or(0.0);
        if lead.abs() <= tol {
            return JuryResult::Marginal;
        }
        if asc[0].abs() >= lead.abs() - tol {
            return if (asc[0].abs() - lead.abs()).abs() <= tol {
                JuryResult::Marginal
            } else {
                JuryResult::Unstable
            };
        }
        if lead < 0.0 {
            for c in asc.iter_mut() {
                *c = -*c;
            }
        }
        row = asc;
    }
    JuryResult::Stable
}

/// Convenience: `true` iff the Jury test reports [`JuryResult::Stable`].
pub fn is_stable_jury(p: &Polynomial) -> bool {
    jury_test(p) == JuryResult::Stable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{closed_loop, PidGains};

    #[test]
    fn constants_are_stable() {
        assert_eq!(jury_test(&Polynomial::constant(3.0)), JuryResult::Stable);
    }

    #[test]
    fn first_order_cases() {
        // z - 0.5: root 0.5 → stable.
        assert_eq!(
            jury_test(&Polynomial::from_roots(&[0.5])),
            JuryResult::Stable
        );
        // z - 1.5 → unstable.
        assert_eq!(
            jury_test(&Polynomial::from_roots(&[1.5])),
            JuryResult::Unstable
        );
        // z + 1: root on the circle → marginal.
        assert_eq!(
            jury_test(&Polynomial::from_roots(&[-1.0])),
            JuryResult::Marginal
        );
    }

    #[test]
    fn second_order_complex_pair() {
        // z² − 1.468z + 0.74: |roots|² = 0.74 → stable.
        let p = Polynomial::new(vec![0.74, -1.468, 1.0]);
        assert_eq!(jury_test(&p), JuryResult::Stable);
        // z² − 1.468z + 1.05: |roots|² > 1 → unstable.
        let q = Polynomial::new(vec![1.05, -1.468, 1.0]);
        assert_eq!(jury_test(&q), JuryResult::Unstable);
    }

    #[test]
    fn paper_closed_loop_is_jury_stable() {
        let cl = closed_loop(PidGains::paper(), 0.79);
        assert_eq!(jury_test(cl.denominator()), JuryResult::Stable);
    }

    #[test]
    fn beyond_the_gain_margin_is_jury_unstable() {
        let cl = closed_loop(PidGains::paper(), 2.3 * 0.79);
        assert_eq!(jury_test(cl.denominator()), JuryResult::Unstable);
    }

    #[test]
    fn negative_leading_coefficient_is_normalized() {
        // −(z − 0.5)(z − 0.2): same roots, negative leading coefficient.
        let p = Polynomial::from_roots(&[0.5, 0.2]).scale(-1.0);
        assert_eq!(jury_test(&p), JuryResult::Stable);
    }

    #[test]
    fn agrees_with_the_root_finder_on_a_sweep() {
        // Cross-validation: for a grid of cubics, Jury and Aberth–Ehrlich
        // must agree whenever neither is marginal.
        for i in -4i32..=4 {
            for j in -4i32..=4 {
                for k in -4i32..=4 {
                    let p =
                        Polynomial::new(vec![k as f64 * 0.3, j as f64 * 0.3, i as f64 * 0.3, 1.0]);
                    let jury = jury_test(&p);
                    if jury == JuryResult::Marginal {
                        continue;
                    }
                    let radius = crate::roots::spectral_radius(&p);
                    // Skip near-circle cases where float noise could flip
                    // the comparison.
                    if (radius - 1.0).abs() < 1e-6 {
                        continue;
                    }
                    let by_roots = radius < 1.0;
                    assert_eq!(
                        jury == JuryResult::Stable,
                        by_roots,
                        "disagreement on {p}: jury {jury:?}, spectral radius {radius}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn zero_polynomial_panics() {
        jury_test(&Polynomial::zero());
    }
}
