//! Polynomial root finding via the Aberth–Ehrlich simultaneous iteration.
//!
//! Used to compute the poles and zeros of z-domain transfer functions.
//! Degrees 1 and 2 are handled in closed form; higher degrees use
//! Aberth–Ehrlich, which converges cubically for simple roots and is robust
//! for the small (≤ ~10th degree), well-scaled polynomials produced by
//! controller analysis.

use crate::complex::Complex;
use crate::poly::Polynomial;

/// Iteration limit for the Aberth–Ehrlich loop.
const MAX_ITERS: usize = 200;
/// Convergence threshold on the largest correction step, relative to the
/// root-radius bound.
const STEP_TOL: f64 = 1e-13;

/// Finds all complex roots of `p` (with multiplicity).
///
/// Returns an empty vector for constant polynomials. Panics on the zero
/// polynomial, which has no well-defined root set.
pub fn roots(p: &Polynomial) -> Vec<Complex> {
    assert!(!p.is_zero(), "the zero polynomial has no root set");
    // Strip exact zero roots at the origin first (x | p). This both speeds
    // convergence and keeps the Cauchy bound meaningful for polynomials
    // like z²·(…).
    let coeffs = p.coefficients();
    let zero_roots = coeffs.iter().take_while(|&&c| c == 0.0).count();
    let reduced = Polynomial::new(coeffs[zero_roots..].to_vec());
    let mut out = vec![Complex::ZERO; zero_roots];
    out.extend(roots_nonzero(&reduced));
    out
}

fn roots_nonzero(p: &Polynomial) -> Vec<Complex> {
    match p.degree() {
        0 => Vec::new(),
        1 => {
            let c = p.coefficients();
            vec![Complex::real(-c[0] / c[1])]
        }
        2 => quadratic_roots(p),
        _ => aberth(p),
    }
}

/// Closed-form quadratic solver with a numerically stable formulation
/// (avoids catastrophic cancellation for b² ≫ 4ac).
fn quadratic_roots(p: &Polynomial) -> Vec<Complex> {
    let c = p.coefficients();
    let (a, b, cc) = (c[2], c[1], c[0]);
    let disc = b * b - 4.0 * a * cc;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // q = -(b + sign(b)·√disc)/2 ; roots are q/a and c/q.
        let q = -0.5 * (b + b.signum() * sq);
        if q == 0.0 {
            // b == 0 and disc == 0 → double root at 0.
            return vec![Complex::ZERO, Complex::ZERO];
        }
        vec![Complex::real(q / a), Complex::real(cc / q)]
    } else {
        let re = -b / (2.0 * a);
        let im = (-disc).sqrt() / (2.0 * a);
        vec![Complex::new(re, im), Complex::new(re, -im)]
    }
}

/// Cauchy's bound: all roots lie within `1 + max|cᵢ/c_n|`.
fn cauchy_bound(p: &Polynomial) -> f64 {
    let c = p.coefficients();
    let lead = c[c.len() - 1].abs();
    let m = c[..c.len() - 1]
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs() / lead));
    1.0 + m
}

fn aberth(p: &Polynomial) -> Vec<Complex> {
    let n = p.degree();
    let monic = p.monic();
    let dmonic = monic.derivative();
    let radius = cauchy_bound(&monic).min(1e8);

    // Initial guesses: points on a circle of ~half the Cauchy radius with an
    // irrational angular offset so no guess starts on the real axis (real
    // axis symmetry can otherwise stall the iteration on real-coefficient
    // polynomials with complex roots).
    let mut z: Vec<Complex> = (0..n)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) / (n as f64) + 0.43762797;
            Complex::from_polar(0.5 * radius.max(1e-3), theta)
        })
        .collect();

    for _ in 0..MAX_ITERS {
        let mut max_step = 0.0f64;
        let snapshot = z.clone();
        for (k, zk) in z.iter_mut().enumerate() {
            let pv = monic.eval_complex(*zk);
            let dv = dmonic.eval_complex(*zk);
            if pv.norm() == 0.0 {
                continue;
            }
            // Newton ratio with a nudge if p'(z) vanished.
            let w = if dv.norm() < 1e-300 {
                Complex::new(1e-8, 1e-8)
            } else {
                pv / dv
            };
            // Aberth correction: sum over the other current root estimates.
            let mut s = Complex::ZERO;
            for (j, zj) in snapshot.iter().enumerate() {
                if j != k {
                    let d = *zk - *zj;
                    if d.norm_sqr() > 1e-300 {
                        s += d.recip();
                    }
                }
            }
            let denom = Complex::ONE - w * s;
            let step = if denom.norm() < 1e-300 { w } else { w / denom };
            *zk = *zk - step;
            max_step = max_step.max(step.norm());
        }
        if max_step < STEP_TOL * radius {
            break;
        }
    }
    // Polish with a few Newton steps for extra accuracy.
    for zk in z.iter_mut() {
        for _ in 0..4 {
            let pv = monic.eval_complex(*zk);
            let dv = dmonic.eval_complex(*zk);
            if dv.norm() < 1e-300 {
                break;
            }
            *zk = *zk - pv / dv;
        }
        // Snap near-real roots onto the real axis (real coefficients mean
        // roots come in conjugate pairs; lone imaginary dust is iteration
        // noise).
        if zk.im.abs() < 1e-9 * (1.0 + zk.re.abs()) {
            zk.im = 0.0;
        }
    }
    z
}

/// Returns the spectral radius: the largest root modulus of `p`.
pub fn spectral_radius(p: &Polynomial) -> f64 {
    roots(p).into_iter().fold(0.0f64, |m, r| m.max(r.norm()))
}

/// True when every root of `p` lies strictly inside the unit circle —
/// the discrete-time (z-domain) stability criterion used throughout the
/// paper's §II-D.
pub fn all_roots_in_unit_circle(p: &Polynomial) -> bool {
    spectral_radius(p) < 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(mut rs: Vec<Complex>) -> Vec<f64> {
        rs.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        rs.into_iter().map(|r| r.re).collect()
    }

    fn assert_roots_close(p: &Polynomial, expected: &[f64]) {
        let rs = roots(p);
        assert_eq!(rs.len(), expected.len());
        for r in &rs {
            assert!(r.im.abs() < 1e-7, "expected real root, got {r}");
        }
        let got = sorted_real(rs);
        let mut exp = expected.to_vec();
        exp.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, e) in got.iter().zip(exp.iter()) {
            assert!((g - e).abs() < 1e-7, "root {g} vs expected {e}");
        }
    }

    #[test]
    fn linear_root() {
        assert_roots_close(&Polynomial::new(vec![-3.0, 1.5]), &[2.0]);
    }

    #[test]
    fn quadratic_real_roots() {
        assert_roots_close(&Polynomial::from_roots(&[1.0, -4.0]), &[1.0, -4.0]);
    }

    #[test]
    fn quadratic_complex_roots() {
        // z² + 1 = 0 → ±i
        let rs = roots(&Polynomial::new(vec![1.0, 0.0, 1.0]));
        assert_eq!(rs.len(), 2);
        for r in rs {
            assert!(r.re.abs() < 1e-12);
            assert!((r.im.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_extreme_coefficients_stable() {
        // x² + 1e8·x + 1 has roots ≈ -1e8 and ≈ -1e-8; the naive formula
        // destroys the small one.
        let rs = roots(&Polynomial::new(vec![1.0, 1.0e8, 1.0]));
        let got = sorted_real(rs);
        assert!((got[0] + 1.0e8).abs() / 1.0e8 < 1e-12);
        assert!((got[1] + 1.0e-8).abs() / 1.0e-8 < 1e-9);
    }

    #[test]
    fn cubic_known_roots() {
        assert_roots_close(
            &Polynomial::from_roots(&[0.5, -0.25, 0.9]),
            &[0.5, -0.25, 0.9],
        );
    }

    #[test]
    fn high_degree_real_roots() {
        let expected = [-2.0, -1.0, -0.3, 0.2, 0.7, 1.5, 3.0];
        assert_roots_close(&Polynomial::from_roots(&expected), &expected);
    }

    #[test]
    fn mixed_complex_roots() {
        // (z² - 1.468z + 0.74)(z + 0.2995): the paper's Eq. 12 denominator
        // shape. Complex pair at 0.734 ± i·sqrt(0.74 - 0.734²).
        let quad = Polynomial::new(vec![0.74, -1.468, 1.0]);
        let lin = Polynomial::new(vec![0.2995, 1.0]);
        let p = &quad * &lin;
        let rs = roots(&p);
        assert_eq!(rs.len(), 3);
        let real: Vec<_> = rs.iter().filter(|r| r.im == 0.0).collect();
        assert_eq!(real.len(), 1);
        assert!((real[0].re + 0.2995).abs() < 1e-9);
        let cplx: Vec<_> = rs.iter().filter(|r| r.im != 0.0).collect();
        assert_eq!(cplx.len(), 2);
        for c in cplx {
            assert!((c.norm_sqr() - 0.74).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_roots_at_origin_are_stripped() {
        // z³(z - 2) = z⁴ - 2z³
        let p = Polynomial::new(vec![0.0, 0.0, 0.0, -2.0, 1.0]);
        let rs = roots(&p);
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.iter().filter(|r| r.norm() == 0.0).count(), 3);
        assert!(rs.iter().any(|r| (r.re - 2.0).abs() < 1e-9));
    }

    #[test]
    fn repeated_roots_converge() {
        // (z - 0.5)³ — multiple roots converge slower (linear) but should
        // still land within a loose tolerance.
        let p = Polynomial::from_roots(&[0.5, 0.5, 0.5]);
        let rs = roots(&p);
        for r in rs {
            assert!((r - Complex::real(0.5)).norm() < 1e-3, "got {r}");
        }
    }

    #[test]
    fn spectral_radius_and_stability() {
        let stable = Polynomial::from_roots(&[0.3, -0.8, 0.05]);
        assert!(all_roots_in_unit_circle(&stable));
        assert!((spectral_radius(&stable) - 0.8).abs() < 1e-9);

        let unstable = Polynomial::from_roots(&[0.3, -1.01]);
        assert!(!all_roots_in_unit_circle(&unstable));
    }

    #[test]
    fn constant_polynomial_has_no_roots() {
        assert!(roots(&Polynomial::constant(5.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn zero_polynomial_panics() {
        roots(&Polynomial::zero());
    }

    #[test]
    fn roots_reconstruct_polynomial() {
        // Verify by re-expanding: Π(z - rᵢ) should match the monic input.
        let p = Polynomial::new(vec![0.237, 0.21, -1.131, 1.0]); // Eq. 12 denom
        let rs = roots(&p);
        let mut recon = Polynomial::constant(1.0);
        for r in &rs {
            if r.im == 0.0 {
                recon = &recon * &Polynomial::new(vec![-r.re, 1.0]);
            } else if r.im > 0.0 {
                // conjugate pair → real quadratic z² - 2Re·z + |z|²
                recon = &recon * &Polynomial::new(vec![r.norm_sqr(), -2.0 * r.re, 1.0]);
            }
        }
        for (a, b) in recon.coefficients().iter().zip(p.coefficients()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }
}
