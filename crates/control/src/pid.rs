//! The discrete PID control law (paper Eq. 7) and its z-domain transfer
//! function (paper Eq. 10).
//!
//! The runtime controller implements the *positional* form used by the
//! paper's PIC:
//!
//! ```text
//! u(t) = K_P·e(t) + K_I·Σ_{u=0}^{t-1} e(u) + K_D·(e(t) − e(t−1))
//! ```
//!
//! with optional integral clamping (anti-windup) — needed in practice
//! because the DVFS actuator saturates at the lowest/highest V/F pair, and
//! an unclamped integral would keep accumulating error the actuator cannot
//! act on.

use crate::poly::Polynomial;
use crate::tf::TransferFunction;

/// The three PID design parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidGains {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
}

impl PidGains {
    /// Creates a gain triple.
    pub const fn new(kp: f64, ki: f64, kd: f64) -> Self {
        Self { kp, ki, kd }
    }

    /// The paper's published design point: `K_P = 0.4, K_I = 0.4, K_D = 0.3`
    /// (§II-D), chosen by pole placement for plant gain `a = 0.79`.
    pub const fn paper() -> Self {
        Self::new(0.4, 0.4, 0.3)
    }

    /// Proportional-only variant (used by the ablation studies).
    pub const fn p_only(kp: f64) -> Self {
        Self::new(kp, 0.0, 0.0)
    }

    /// PI variant (used by the ablation studies).
    pub const fn pi(kp: f64, ki: f64) -> Self {
        Self::new(kp, ki, 0.0)
    }

    /// The z-domain PID transfer function (paper Eq. 10):
    ///
    /// ```text
    /// C(z) = K_P + K_I·z/(z−1) + K_D·(z−1)/z
    ///      = [ (K_P+K_I+K_D)·z² − (K_P+2K_D)·z + K_D ] / ( z·(z−1) )
    /// ```
    ///
    /// Degenerate gain combinations (`K_I = 0` and/or `K_D = 0`) are built
    /// in minimal form so no removable `z` / `(z−1)` factor lingers in the
    /// denominator — an uncancelled `(z−1)` would otherwise make every
    /// P/PD closed loop *look* marginally unstable to the pole test.
    pub fn transfer_function(&self) -> TransferFunction {
        match (self.ki != 0.0, self.kd != 0.0) {
            (true, true) => TransferFunction::new(
                Polynomial::new(vec![
                    self.kd,
                    -(self.kp + 2.0 * self.kd),
                    self.kp + self.ki + self.kd,
                ]),
                // z(z-1) = z² - z
                Polynomial::new(vec![0.0, -1.0, 1.0]),
            ),
            // PI: ((K_P+K_I)z − K_P) / (z − 1)
            (true, false) => TransferFunction::new(
                Polynomial::new(vec![-self.kp, self.kp + self.ki]),
                Polynomial::new(vec![-1.0, 1.0]),
            ),
            // PD: ((K_P+K_D)z − K_D) / z
            (false, true) => TransferFunction::new(
                Polynomial::new(vec![-self.kd, self.kp + self.kd]),
                Polynomial::new(vec![0.0, 1.0]),
            ),
            // P: pure gain.
            (false, false) => TransferFunction::gain(self.kp),
        }
    }
}

/// One invocation's control output broken into its three terms
/// (telemetry view of Eq. 7; `output = p + i + d`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidTerms {
    /// Proportional term `K_P·e(t)`.
    pub p: f64,
    /// Integral term `K_I·Σ_{u<t} e(u)`.
    pub i: f64,
    /// Derivative term `K_D·(e(t) − e(t−1))`.
    pub d: f64,
    /// The control output `u(t)`.
    pub output: f64,
}

/// A stateful PID controller instance.
///
/// ```
/// use cpm_control::{Pid, PidGains};
///
/// let mut pid = Pid::new(PidGains::paper());
/// // First invocation: no integral history, no derivative kick.
/// assert_eq!(pid.step(1.0), 0.4);
/// // Second: integral term now carries the first error.
/// assert_eq!(pid.step(1.0), 0.4 + 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct Pid {
    gains: PidGains,
    integral: f64,
    prev_error: f64,
    /// Symmetric clamp on the integral accumulator; `f64::INFINITY`
    /// disables anti-windup.
    integral_limit: f64,
    started: bool,
}

impl Pid {
    /// Creates a controller with no anti-windup clamp.
    pub fn new(gains: PidGains) -> Self {
        Self {
            gains,
            integral: 0.0,
            prev_error: 0.0,
            integral_limit: f64::INFINITY,
            started: false,
        }
    }

    /// Sets a symmetric bound `|Σe| ≤ limit` on the integral accumulator.
    pub fn with_integral_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0, "integral limit must be positive");
        self.integral_limit = limit;
        self
    }

    /// The configured gains.
    pub fn gains(&self) -> PidGains {
        self.gains
    }

    /// Current integral accumulator (Σ of past errors, excluding the one
    /// passed to the most recent `step` — matching Eq. 7's upper bound of
    /// `t−1`).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Advances the controller one invocation with the current error
    /// `e(t) = reference − measurement`, returning the control output `u(t)`.
    pub fn step(&mut self, error: f64) -> f64 {
        self.step_terms(error).output
    }

    /// Like [`Pid::step`], but returns the P/I/D decomposition alongside the
    /// output — the flight recorder's view into the control law.
    pub fn step_terms(&mut self, error: f64) -> PidTerms {
        let derivative = if self.started {
            error - self.prev_error
        } else {
            // First invocation: no previous sample, so no derivative kick.
            0.0
        };
        let p = self.gains.kp * error;
        let i = self.gains.ki * self.integral;
        let d = self.gains.kd * derivative;
        // Post-update so the integral term covers u = 0..t-1 as in Eq. 7.
        self.integral = (self.integral + error).clamp(-self.integral_limit, self.integral_limit);
        self.prev_error = error;
        self.started = true;
        PidTerms {
            p,
            i,
            d,
            output: p + i + d,
        }
    }

    /// Back-calculation anti-windup: informs the controller that
    /// `unrealized` of its last output could not be actuated (slew or
    /// range saturation downstream). The integral is rewound by the
    /// equivalent amount so it does not keep accumulating action the
    /// actuator cannot deliver. No-op for `K_I = 0`.
    pub fn back_calculate(&mut self, unrealized: f64) {
        if self.gains.ki != 0.0 {
            self.integral = (self.integral - unrealized / self.gains.ki)
                .clamp(-self.integral_limit, self.integral_limit);
        }
    }

    /// Resets all controller state (integral, derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = 0.0;
        self.started = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_scales_error() {
        let mut pid = Pid::new(PidGains::p_only(0.5));
        assert_eq!(pid.step(2.0), 1.0);
        assert_eq!(pid.step(-4.0), -2.0);
    }

    #[test]
    fn integral_accumulates_past_errors_only() {
        // Eq. 7 sums e(u) for u = 0..t-1: the current error enters the
        // integral term only on the *next* invocation.
        let mut pid = Pid::new(PidGains::new(0.0, 1.0, 0.0));
        assert_eq!(pid.step(1.0), 0.0); // Σ over empty set
        assert_eq!(pid.step(1.0), 1.0); // Σ = e(0)
        assert_eq!(pid.step(1.0), 2.0); // Σ = e(0)+e(1)
    }

    #[test]
    fn derivative_responds_to_change() {
        let mut pid = Pid::new(PidGains::new(0.0, 0.0, 2.0));
        assert_eq!(pid.step(1.0), 0.0); // no previous sample → no kick
        assert_eq!(pid.step(3.0), 4.0); // Δe = 2
        assert_eq!(pid.step(3.0), 0.0); // Δe = 0
    }

    #[test]
    fn combined_gains_match_eq7() {
        let mut pid = Pid::new(PidGains::paper());
        let errors = [1.0, 0.5, -0.25];
        let mut integral = 0.0;
        let mut prev = 0.0;
        for (t, &e) in errors.iter().enumerate() {
            let d = if t == 0 { 0.0 } else { e - prev };
            let expect = 0.4 * e + 0.4 * integral + 0.3 * d;
            assert!((pid.step(e) - expect).abs() < 1e-12);
            integral += e;
            prev = e;
        }
    }

    #[test]
    fn step_terms_decomposition_sums_to_step() {
        let mut a = Pid::new(PidGains::paper()).with_integral_limit(2.0);
        let mut b = Pid::new(PidGains::paper()).with_integral_limit(2.0);
        for &e in &[1.0, 0.5, -0.25, 2.0, -1.5] {
            let terms = a.step_terms(e);
            assert!((terms.p + terms.i + terms.d - terms.output).abs() < 1e-15);
            assert_eq!(terms.output, b.step(e), "step must match step_terms");
        }
    }

    #[test]
    fn anti_windup_clamps_integral() {
        let mut pid = Pid::new(PidGains::new(0.0, 1.0, 0.0)).with_integral_limit(2.5);
        for _ in 0..10 {
            pid.step(1.0);
        }
        assert_eq!(pid.integral(), 2.5);
        // And it unwinds symmetrically.
        for _ in 0..10 {
            pid.step(-1.0);
        }
        assert_eq!(pid.integral(), -2.5);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidGains::paper());
        pid.step(5.0);
        pid.step(1.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // After reset, behaves like a fresh controller (no derivative kick).
        assert!((pid.step(1.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn transfer_function_matches_eq10_shape() {
        // C(z) numerator: (KP+KI+KD)z² − (KP+2KD)z + KD over z(z−1).
        let c = PidGains::paper().transfer_function();
        assert_eq!(c.numerator().coefficients(), &[0.3, -1.0, 1.1]);
        assert_eq!(c.denominator().coefficients(), &[0.0, -1.0, 1.0]);
    }

    #[test]
    fn tf_has_integrator_pole() {
        // The PID transfer function has poles at z = 0 and z = 1.
        let c = PidGains::paper().transfer_function();
        let poles = c.poles();
        assert_eq!(poles.len(), 2);
        assert!(poles.iter().any(|p| p.norm() < 1e-12));
        assert!(poles
            .iter()
            .any(|p| (p.re - 1.0).abs() < 1e-12 && p.im.abs() < 1e-12));
    }

    #[test]
    fn stateful_controller_matches_tf_simulation() {
        // Drive both the stateful Pid and its transfer function with the
        // same error sequence; outputs must agree sample-for-sample.
        //
        // Subtlety: the runtime Pid uses Σ_{u<t} e(u) (strictly past), while
        // C(z)'s integral term K_I·z/(z−1) sums through the current sample.
        // Eq. 7 and Eq. 10 differ by exactly K_I·e(t); the runtime follows
        // Eq. 7, so compare against the TF with the current-sample term
        // removed: C'(z) = C(z) − K_I. The error sequence starts at e(0)=0
        // so the runtime's suppressed first-sample derivative kick matches
        // the TF's rest assumption (e(−1)=0) as well.
        let gains = PidGains::paper();
        let c = gains.transfer_function();
        let c_past = c.parallel(&TransferFunction::gain(-gains.ki));
        let errors: Vec<f64> = (0..20).map(|t| ((t as f64) * 0.7).sin()).collect();
        let tf_out = c_past.simulate(&errors);
        let mut pid = Pid::new(gains);
        for (t, &e) in errors.iter().enumerate() {
            let u = pid.step(e);
            assert!(
                (u - tf_out[t]).abs() < 1e-9,
                "t={t}: pid {u} vs tf {}",
                tf_out[t]
            );
        }
    }
}
