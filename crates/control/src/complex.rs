//! Minimal complex-number arithmetic.
//!
//! Implemented locally (rather than pulling in `num-complex`) because the
//! root finder and pole analysis only need a handful of operations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number `re + im·i` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates the point `r·e^{iθ}`. Cold analysis path: trigonometry
    /// goes through the sanctioned libm gateway, not the deterministic
    /// hot-path kernels.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(
            r * cpm_math::reference::cos(theta),
            r * cpm_math::reference::sin(theta),
        )
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|²` (cheaper than [`Complex::norm`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument `arg(z)` in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// The multiplicative inverse `1/z`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True when the imaginary part is negligible relative to `tol`.
    #[inline]
    pub fn is_approx_real(self, tol: f64) -> bool {
        self.im.abs() <= tol
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert!(close(a * b, Complex::new(5.0, 5.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(-2.5, 0.7);
        let b = Complex::new(0.3, 1.9);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn recip_of_i() {
        assert!(close(Complex::I.recip(), -Complex::I));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm_sqr() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.norm() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        assert!(close(z * z.conj(), Complex::real(25.0)));
    }

    #[test]
    fn approx_real_detection() {
        assert!(Complex::new(1.0, 1e-12).is_approx_real(1e-9));
        assert!(!Complex::new(1.0, 1e-3).is_approx_real(1e-9));
    }
}
