//! Least-squares system identification.
//!
//! Two estimators back the paper's modeling steps:
//!
//! * [`fit_gain_through_origin`] — the first-order plant gain `aᵢ` in
//!   `ΔP = aᵢ·d` (paper Eq. 8), fit per workload and averaged over the
//!   PARSEC suite (the paper obtains `a = 0.79`);
//! * [`LinearRegression`] — ordinary least squares `y = k₀·x + k₁` with R²,
//!   used for the utilization→power transducer models of Fig. 6
//!   (avg R² ≈ 0.96).

/// Result of an ordinary least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope (`k₀` in the paper's transducer `P = k₀·U + k₁`).
    pub slope: f64,
    /// Fitted intercept (`k₁`).
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
    /// Number of samples used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Inverts the fitted line: the `x` that predicts `y`. Panics when the
    /// slope is zero.
    #[inline]
    pub fn invert(&self, y: f64) -> f64 {
        assert!(self.slope != 0.0, "cannot invert a flat fit");
        (y - self.intercept) / self.slope
    }
}

/// Incremental ordinary least-squares accumulator for `y = slope·x +
/// intercept`.
///
/// Samples can be streamed in one at a time (the transducer calibrates
/// online while the simulation runs) and the fit extracted at any point
/// after two or more distinct x-values have been seen.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    n: usize,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
    sum_yy: f64,
}

impl LinearRegression {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(x, y)` observation.
    pub fn add(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
        self.sum_yy += y * y;
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Computes the fit. Returns `None` with fewer than 2 samples or when
    /// all x-values coincide (vertical line).
    pub fn fit(&self) -> Option<LinearFit> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let sxx = self.sum_xx - self.sum_x * self.sum_x / n;
        if sxx <= 0.0 {
            return None;
        }
        let sxy = self.sum_xy - self.sum_x * self.sum_y / n;
        let syy = self.sum_yy - self.sum_y * self.sum_y / n;
        let slope = sxy / sxx;
        let intercept = (self.sum_y - slope * self.sum_x) / n;
        let r_squared = if syy <= 0.0 {
            // All y equal: a horizontal line explains everything.
            1.0
        } else {
            (sxy * sxy / (sxx * syy)).clamp(0.0, 1.0)
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
            n: self.n,
        })
    }
}

/// Result of a quadratic least-squares fit `y = a·x² + b·x + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticFit {
    /// Quadratic coefficient.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Constant term.
    pub c: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of samples used.
    pub n: usize,
}

impl QuadraticFit {
    /// Evaluates the fitted parabola at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        (self.a * x + self.b) * x + self.c
    }
}

/// Incremental least-squares accumulator for `y = a·x² + b·x + c`.
///
/// Solves the 3×3 normal equations by Gaussian elimination with partial
/// pivoting; adequate for the well-scaled (x ∈ [0, 1]) transducer
/// calibration data it exists for.
#[derive(Debug, Clone, Default)]
pub struct QuadraticRegression {
    n: usize,
    sx: [f64; 5], // Σx⁰ … Σx⁴
    sy: f64,
    sxy: f64,
    sx2y: f64,
    syy: f64,
}

impl QuadraticRegression {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(x, y)` observation.
    pub fn add(&mut self, x: f64, y: f64) {
        self.n += 1;
        let mut xp = 1.0;
        for s in self.sx.iter_mut() {
            *s += xp;
            xp *= x;
        }
        self.sy += y;
        self.sxy += x * y;
        self.sx2y += x * x * y;
        self.syy += y * y;
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Computes the fit. Returns `None` with fewer than 3 samples or a
    /// singular design (e.g. all x equal).
    pub fn fit(&self) -> Option<QuadraticFit> {
        if self.n < 3 {
            return None;
        }
        // Normal equations, unknowns ordered [c, b, a].
        let mut m = [
            [self.sx[0], self.sx[1], self.sx[2], self.sy],
            [self.sx[1], self.sx[2], self.sx[3], self.sxy],
            [self.sx[2], self.sx[3], self.sx[4], self.sx2y],
        ];
        // Gaussian elimination with partial pivoting.
        for col in 0..3 {
            let pivot =
                (col..3).max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())?;
            if m[pivot][col].abs() < 1e-12 {
                return None;
            }
            m.swap(col, pivot);
            for row in 0..3 {
                if row != col {
                    let f = m[row][col] / m[col][col];
                    let pivot_row = m[col];
                    for (k, cell) in m[row].iter_mut().enumerate().skip(col) {
                        *cell -= f * pivot_row[k];
                    }
                }
            }
        }
        let c = m[0][3] / m[0][0];
        let b = m[1][3] / m[1][1];
        let a = m[2][3] / m[2][2];
        // R² from residual sum of squares.
        let n = self.n as f64;
        let syy_c = self.syy - self.sy * self.sy / n;
        let ss_res = (self.syy - 2.0 * (c * self.sy + b * self.sxy + a * self.sx2y)
            + c * c * self.sx[0]
            + 2.0 * c * b * self.sx[1]
            + (b * b + 2.0 * c * a) * self.sx[2]
            + 2.0 * b * a * self.sx[3]
            + a * a * self.sx[4])
            .max(0.0);
        let r_squared = if syy_c <= 0.0 {
            1.0
        } else {
            (1.0 - ss_res / syy_c).clamp(0.0, 1.0)
        };
        Some(QuadraticFit {
            a,
            b,
            c,
            r_squared,
            n: self.n,
        })
    }
}

/// Fits `y = a·x` (no intercept) by least squares: `a = Σxy / Σx²`.
///
/// Returns `None` when fewer than one sample has nonzero `x`. This is the
/// estimator for the plant gain `aᵢ` of Eq. 8, where both `ΔP` and the
/// frequency delta `d` are zero-mean by construction so the origin is the
/// physically correct anchor.
pub fn fit_gain_through_origin(samples: &[(f64, f64)]) -> Option<f64> {
    let (sxy, sxx) = samples
        .iter()
        .fold((0.0, 0.0), |(sxy, sxx), &(x, y)| (sxy + x * y, sxx + x * x));
    if sxx <= 0.0 {
        None
    } else {
        Some(sxy / sxx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let mut reg = LinearRegression::new();
        for i in 0..10 {
            let x = i as f64;
            reg.add(x, 3.0 * x + 1.5);
        }
        let fit = reg.fit().unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 1.5).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 10);
    }

    #[test]
    fn noisy_line_fit_is_close_with_high_r2() {
        // Deterministic pseudo-noise.
        let mut reg = LinearRegression::new();
        for i in 0..200 {
            let x = i as f64 / 10.0;
            let noise = ((i * 2654435761u64) % 1000) as f64 / 1000.0 - 0.5;
            reg.add(x, 2.0 * x + 5.0 + noise * 0.2);
        }
        let fit = reg.fit().unwrap();
        assert!((fit.slope - 2.0).abs() < 0.02);
        assert!((fit.intercept - 5.0).abs() < 0.2);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn too_few_samples() {
        let mut reg = LinearRegression::new();
        assert!(reg.fit().is_none());
        reg.add(1.0, 1.0);
        assert!(reg.fit().is_none());
        reg.add(2.0, 2.0);
        assert!(reg.fit().is_some());
    }

    #[test]
    fn vertical_data_has_no_fit() {
        let mut reg = LinearRegression::new();
        reg.add(1.0, 1.0);
        reg.add(1.0, 5.0);
        assert!(reg.fit().is_none());
    }

    #[test]
    fn horizontal_data_fits_perfectly() {
        let mut reg = LinearRegression::new();
        for i in 0..5 {
            reg.add(i as f64, 7.0);
        }
        let fit = reg.fit().unwrap();
        assert_eq!(fit.slope, 0.0);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn predict_and_invert_roundtrip() {
        let fit = LinearFit {
            slope: 4.5,
            intercept: 3.1,
            r_squared: 1.0,
            n: 2,
        };
        let y = fit.predict(0.8);
        assert!((fit.invert(y) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn quadratic_recovers_exact_parabola() {
        let mut q = QuadraticRegression::new();
        for i in 0..20 {
            let x = i as f64 / 10.0;
            q.add(x, 2.0 * x * x - 3.0 * x + 0.5);
        }
        let f = q.fit().unwrap();
        assert!((f.a - 2.0).abs() < 1e-9, "a={}", f.a);
        assert!((f.b + 3.0).abs() < 1e-9);
        assert!((f.c - 0.5).abs() < 1e-9);
        assert!((f.r_squared - 1.0).abs() < 1e-9);
        assert!((f.predict(0.7) - (2.0 * 0.49 - 2.1 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn quadratic_fits_line_with_zero_curvature() {
        let mut q = QuadraticRegression::new();
        for i in 0..10 {
            let x = i as f64;
            q.add(x, 4.0 * x + 1.0);
        }
        let f = q.fit().unwrap();
        assert!(f.a.abs() < 1e-9);
        assert!((f.b - 4.0).abs() < 1e-9);
        assert!((f.c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_outfits_linear_on_convex_data() {
        // The transducer motivation: P(U) convex under voltage scaling.
        let mut lin = LinearRegression::new();
        let mut quad = QuadraticRegression::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            let y = 5.0 + 10.0 * x + 12.0 * x * x;
            lin.add(x, y);
            quad.add(x, y);
        }
        let lf = lin.fit().unwrap();
        let qf = quad.fit().unwrap();
        assert!(qf.r_squared > lf.r_squared);
        assert!(qf.r_squared > 0.999);
    }

    #[test]
    fn quadratic_needs_three_samples_and_spread() {
        let mut q = QuadraticRegression::new();
        q.add(1.0, 1.0);
        q.add(2.0, 2.0);
        assert!(q.fit().is_none());
        let mut flat = QuadraticRegression::new();
        for _ in 0..5 {
            flat.add(1.0, 2.0);
        }
        assert!(flat.fit().is_none(), "singular design must be rejected");
    }

    #[test]
    fn gain_through_origin_exact() {
        let samples: Vec<(f64, f64)> = (1..20)
            .map(|i| (i as f64 * 0.1, i as f64 * 0.079))
            .collect();
        let a = fit_gain_through_origin(&samples).unwrap();
        assert!((a - 0.79).abs() < 1e-12);
    }

    #[test]
    fn gain_through_origin_handles_mixed_signs() {
        // d(t) alternates sign, as it does under white-noise DVFS wiggling.
        let samples = [(-1.0, -0.8), (1.0, 0.78), (-0.5, -0.4), (0.5, 0.41)];
        let a = fit_gain_through_origin(&samples).unwrap();
        assert!((a - 0.79).abs() < 0.05, "a = {a}");
    }

    #[test]
    fn gain_requires_nonzero_inputs() {
        assert!(fit_gain_through_origin(&[]).is_none());
        assert!(fit_gain_through_origin(&[(0.0, 1.0), (0.0, -1.0)]).is_none());
    }
}
