//! Discrete-time (z-domain) transfer functions.
//!
//! A [`TransferFunction`] is a rational function `H(z) = N(z)/D(z)`. The
//! paper's §II-D composes the island plant `P(z) = a/(z−1)` with the PID
//! law `C(z)` and closes the loop as `Y(z) = P·C / (1 + P·C)` (Eq. 11); this
//! module provides exactly those compositions, pole/zero extraction, the
//! unit-circle stability test, and time-domain simulation of the underlying
//! difference equation.

use crate::complex::Complex;
use crate::poly::Polynomial;
use crate::roots;
use std::fmt;

/// A rational transfer function `N(z)/D(z)` with real coefficients.
///
/// ```
/// use cpm_control::{Polynomial, TransferFunction};
///
/// // A stable first-order lag H(z) = 0.4/(z - 0.6) with unit DC gain.
/// let h = TransferFunction::new(
///     Polynomial::new(vec![0.4]),
///     Polynomial::new(vec![-0.6, 1.0]),
/// );
/// assert!(h.is_stable());
/// assert!((h.dc_gain() - 1.0).abs() < 1e-12);
/// let step = h.step_response(50);
/// assert!((step.last().unwrap() - 1.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunction {
    num: Polynomial,
    den: Polynomial,
}

impl TransferFunction {
    /// Creates `num/den`. Panics if the denominator is the zero polynomial.
    pub fn new(num: Polynomial, den: Polynomial) -> Self {
        assert!(!den.is_zero(), "transfer function denominator is zero");
        Self { num, den }
    }

    /// A pure gain `k`.
    pub fn gain(k: f64) -> Self {
        Self::new(Polynomial::constant(k), Polynomial::constant(1.0))
    }

    /// A one-step delay `z⁻¹ = 1/z`.
    pub fn unit_delay() -> Self {
        Self::new(Polynomial::constant(1.0), Polynomial::x())
    }

    /// The numerator polynomial.
    pub fn numerator(&self) -> &Polynomial {
        &self.num
    }

    /// The denominator polynomial.
    pub fn denominator(&self) -> &Polynomial {
        &self.den
    }

    /// True when the function is *proper* (deg N ≤ deg D), i.e. causal.
    pub fn is_proper(&self) -> bool {
        self.num.degree() <= self.den.degree()
    }

    /// Series (cascade) composition: `self · other`.
    pub fn series(&self, other: &Self) -> Self {
        Self::new(&self.num * &other.num, &self.den * &other.den)
    }

    /// Parallel composition: `self + other`.
    pub fn parallel(&self, other: &Self) -> Self {
        Self::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }

    /// Negative unity feedback: `self / (1 + self)`.
    ///
    /// This is the paper's Eq. 11 with `self = P(z)·C(z)`.
    pub fn unity_feedback(&self) -> Self {
        Self::new(self.num.clone(), &self.den + &self.num)
    }

    /// Negative feedback through `h`: `self / (1 + self·h)`.
    pub fn feedback(&self, h: &Self) -> Self {
        // G/(1+GH) = (Ng·Dh) / (Dg·Dh + Ng·Nh)
        Self::new(
            &self.num * &h.den,
            &(&self.den * &h.den) + &(&self.num * &h.num),
        )
    }

    /// Evaluates `H` at a complex point `z` (the frequency response when
    /// `z = e^{jω}`).
    pub fn eval(&self, z: Complex) -> Complex {
        self.num.eval_complex(z) / self.den.eval_complex(z)
    }

    /// DC gain `H(z = 1)` — the steady-state output for a unit step input.
    pub fn dc_gain(&self) -> f64 {
        self.num.eval(1.0) / self.den.eval(1.0)
    }

    /// The poles (roots of the denominator, with multiplicity).
    pub fn poles(&self) -> Vec<Complex> {
        roots::roots(&self.den)
    }

    /// The zeros (roots of the numerator, with multiplicity).
    pub fn zeros(&self) -> Vec<Complex> {
        if self.num.is_zero() {
            return Vec::new();
        }
        roots::roots(&self.num)
    }

    /// Largest pole modulus.
    pub fn spectral_radius(&self) -> f64 {
        roots::spectral_radius(&self.den)
    }

    /// BIBO stability for discrete-time systems: every pole strictly inside
    /// the unit circle. (Pole/zero cancellations are *not* performed — a
    /// cancelled unstable mode still reports unstable, which is the
    /// conservative answer for control design.)
    pub fn is_stable(&self) -> bool {
        roots::all_roots_in_unit_circle(&self.den)
    }

    /// Simulates the difference equation for an arbitrary input sequence,
    /// starting from rest. Requires a proper (causal) transfer function.
    ///
    /// With ascending numerator `b` (degree m) and denominator `a`
    /// (degree n ≥ m), the recurrence in delay form is
    /// `a_n·y[t] = Σ_k b_{n-k}·u[t−k] − Σ_{k≥1} a_{n−k}·y[t−k]`.
    pub fn simulate(&self, input: &[f64]) -> Vec<f64> {
        assert!(
            self.is_proper(),
            "cannot simulate an improper (non-causal) transfer function"
        );
        let b = self.num.coefficients();
        let a = self.den.coefficients();
        let n = self.den.degree();
        let m = self.num.degree();
        let a_lead = a[n];
        let mut y = vec![0.0; input.len()];
        for t in 0..input.len() {
            let mut acc = 0.0;
            // Feed-forward taps: coefficient of z^{-k} in N/z^n is b[n-k],
            // nonzero only when n-k ≤ m.
            for k in (n - m)..=n {
                if t >= k {
                    acc += b[n - k] * input[t - k];
                }
            }
            // Feedback taps.
            for k in 1..=n {
                if t >= k {
                    acc -= a[n - k] * y[t - k];
                }
            }
            y[t] = acc / a_lead;
        }
        y
    }

    /// Unit-step response of length `len`.
    pub fn step_response(&self, len: usize) -> Vec<f64> {
        self.simulate(&vec![1.0; len])
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_order(a: f64) -> TransferFunction {
        // H(z) = a/(z - 1): discrete integrator scaled by a.
        TransferFunction::new(Polynomial::new(vec![a]), Polynomial::new(vec![-1.0, 1.0]))
    }

    #[test]
    fn gain_properties() {
        let g = TransferFunction::gain(2.5);
        assert_eq!(g.dc_gain(), 2.5);
        assert!(g.is_stable());
        assert!(g.poles().is_empty());
    }

    #[test]
    fn unit_delay_shifts_input() {
        let d = TransferFunction::unit_delay();
        let y = d.simulate(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn integrator_accumulates_step() {
        // a/(z-1) driven by a unit step: y[t] = a·t (one-step delayed ramp).
        let h = first_order(0.5);
        let y = h.step_response(5);
        assert_eq!(y, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn integrator_is_marginally_unstable() {
        let h = first_order(1.0);
        assert!(!h.is_stable(), "pole at z=1 is not strictly inside");
        assert!((h.spectral_radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_multiplies() {
        let h = first_order(2.0).series(&TransferFunction::gain(3.0));
        assert_eq!(h.numerator().coefficients(), &[6.0]);
        assert_eq!(h.denominator().coefficients(), &[-1.0, 1.0]);
    }

    #[test]
    fn parallel_adds() {
        // 1/(z-1) + 1 = z/(z-1)
        let h = first_order(1.0).parallel(&TransferFunction::gain(1.0));
        assert_eq!(h.numerator().coefficients(), &[0.0, 1.0]);
        assert_eq!(h.denominator().coefficients(), &[-1.0, 1.0]);
    }

    #[test]
    fn proportional_feedback_stabilizes_integrator() {
        // Loop gain L = K·a/(z−1); closed loop = Ka/(z−1+Ka). Pole at
        // 1 − Ka; with K·a = 0.5 the pole sits at 0.5 → stable.
        let loop_tf = first_order(1.0).series(&TransferFunction::gain(0.5));
        let cl = loop_tf.unity_feedback();
        assert!(cl.is_stable());
        let poles = cl.poles();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re - 0.5).abs() < 1e-12);
        // Proportional-only control of an integrator plant: the plant pole
        // at z=1 already gives zero steady-state error → DC gain 1.
        assert!((cl.dc_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feedback_through_sensor() {
        // G/(1+GH) with G = 1/(z-1), H = 0.5 equals unity_feedback of G·H
        // only in loop poles; verify denominator directly: z - 1 + 0.5.
        let g = first_order(1.0);
        let h = TransferFunction::gain(0.5);
        let cl = g.feedback(&h);
        assert_eq!(cl.denominator().coefficients(), &[-0.5, 1.0]);
        assert_eq!(cl.numerator().coefficients(), &[1.0]);
    }

    #[test]
    fn step_response_converges_to_dc_gain() {
        // Stable first-order lag: H(z) = 0.4/(z - 0.6); DC gain = 1.
        let h = TransferFunction::new(Polynomial::new(vec![0.4]), Polynomial::new(vec![-0.6, 1.0]));
        let y = h.step_response(60);
        let dc = h.dc_gain();
        assert!((dc - 1.0).abs() < 1e-12);
        assert!((y.last().unwrap() - dc).abs() < 1e-6);
    }

    #[test]
    fn eval_matches_dc_gain_at_one() {
        let h = TransferFunction::new(
            Polynomial::new(vec![0.3, 0.2]),
            Polynomial::new(vec![0.25, -1.0, 1.0]),
        );
        let at_one = h.eval(Complex::real(1.0));
        assert!((at_one.re - h.dc_gain()).abs() < 1e-12);
        assert!(at_one.im.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "improper")]
    fn simulating_improper_tf_panics() {
        // z/(1): non-causal differentiator.
        TransferFunction::new(Polynomial::x(), Polynomial::constant(1.0)).simulate(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "denominator is zero")]
    fn zero_denominator_panics() {
        TransferFunction::new(Polynomial::constant(1.0), Polynomial::zero());
    }

    #[test]
    fn zeros_of_numerator() {
        let h = TransferFunction::new(
            Polynomial::from_roots(&[0.2, -0.7]),
            Polynomial::from_roots(&[0.5]),
        );
        let mut zs: Vec<f64> = h.zeros().iter().map(|z| z.re).collect();
        zs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((zs[0] + 0.7).abs() < 1e-9);
        assert!((zs[1] - 0.2).abs() < 1e-9);
    }
}
