//! Frequency-response analysis of discrete transfer functions.
//!
//! §II-D lists Bode plots among the "formal methodologies" for choosing
//! the PID parameters. [`FrequencyResponse`] evaluates `H(e^{jω})` over
//! `ω ∈ (0, π]`, yielding magnitude/phase curves and the classical gain
//! and phase margins of an open-loop transfer function.

use crate::complex::Complex;
use crate::tf::TransferFunction;

/// One point of a frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyPoint {
    /// Normalized angular frequency in radians/sample, `(0, π]`.
    pub omega: f64,
    /// `|H(e^{jω})|`.
    pub magnitude: f64,
    /// `|H|` in decibels.
    pub magnitude_db: f64,
    /// `∠H(e^{jω})` in radians, unwrapped within the sweep.
    pub phase: f64,
}

/// A sampled frequency response.
#[derive(Debug, Clone)]
pub struct FrequencyResponse {
    points: Vec<FrequencyPoint>,
}

impl FrequencyResponse {
    /// Sweeps `tf` over `n` logarithmically spaced frequencies in
    /// `[ω_min, π]`.
    pub fn sweep(tf: &TransferFunction, omega_min: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least two sweep points");
        assert!(
            omega_min > 0.0 && omega_min < std::f64::consts::PI,
            "ω_min must lie in (0, π)"
        );
        // Cold analysis path (design-time Bode sweep): host libm via the
        // sanctioned gateway, not the deterministic hot-path kernels.
        let log_min = cpm_math::reference::ln(omega_min);
        let log_max = cpm_math::reference::ln(std::f64::consts::PI);
        let mut prev_phase: Option<f64> = None;
        let points = (0..n)
            .map(|k| {
                let omega = cpm_math::reference::exp(
                    log_min + (log_max - log_min) * k as f64 / (n - 1) as f64,
                );
                let h = tf.eval(Complex::from_polar(1.0, omega));
                let magnitude = h.norm();
                let mut phase = h.arg();
                // Unwrap: keep the phase continuous across the sweep.
                if let Some(p) = prev_phase {
                    while phase - p > std::f64::consts::PI {
                        phase -= 2.0 * std::f64::consts::PI;
                    }
                    while p - phase > std::f64::consts::PI {
                        phase += 2.0 * std::f64::consts::PI;
                    }
                }
                prev_phase = Some(phase);
                FrequencyPoint {
                    omega,
                    magnitude,
                    magnitude_db: 20.0 * cpm_math::reference::log10(magnitude),
                    phase,
                }
            })
            .collect();
        Self { points }
    }

    /// The sweep points.
    pub fn points(&self) -> &[FrequencyPoint] {
        &self.points
    }

    /// Gain crossover: the first frequency where `|H|` falls through 1.
    pub fn gain_crossover(&self) -> Option<FrequencyPoint> {
        self.points
            .windows(2)
            .find(|w| w[0].magnitude >= 1.0 && w[1].magnitude < 1.0)
            .map(|w| w[1])
    }

    /// Phase crossover: the first frequency where the phase falls through
    /// −180°.
    pub fn phase_crossover(&self) -> Option<FrequencyPoint> {
        let target = -std::f64::consts::PI;
        self.points
            .windows(2)
            .find(|w| w[0].phase > target && w[1].phase <= target)
            .map(|w| w[1])
    }

    /// Classical gain margin of an *open-loop* response: `1/|H|` at the
    /// phase crossover (how much extra loop gain the system tolerates).
    pub fn gain_margin(&self) -> Option<f64> {
        self.phase_crossover().map(|p| 1.0 / p.magnitude)
    }

    /// Classical phase margin: `180° + ∠H` at the gain crossover, radians.
    pub fn phase_margin(&self) -> Option<f64> {
        self.gain_crossover()
            .map(|p| std::f64::consts::PI + p.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::PidGains;
    use crate::poly::Polynomial;
    use crate::{analysis, island_plant};

    fn open_loop(gain: f64) -> TransferFunction {
        island_plant(gain).series(&PidGains::paper().transfer_function())
    }

    #[test]
    fn dc_end_matches_low_frequency_limit() {
        // A first-order lag: H(z) = 0.4/(z − 0.6), DC gain 1.
        let tf =
            TransferFunction::new(Polynomial::new(vec![0.4]), Polynomial::new(vec![-0.6, 1.0]));
        let fr = FrequencyResponse::sweep(&tf, 1e-4, 200);
        let first = fr.points()[0];
        assert!((first.magnitude - 1.0).abs() < 1e-2, "|H| at DC ≈ 1");
        // Low-pass: magnitude decreases toward the Nyquist end.
        let last = fr.points().last().unwrap();
        assert!(last.magnitude < first.magnitude);
    }

    #[test]
    fn magnitude_matches_direct_evaluation() {
        let tf = open_loop(0.79);
        let fr = FrequencyResponse::sweep(&tf, 1e-3, 50);
        for p in fr.points() {
            let direct = tf.eval(Complex::from_polar(1.0, p.omega)).norm();
            assert!((p.magnitude - direct).abs() < 1e-12);
            assert!((p.magnitude_db - 20.0 * direct.log10()).abs() < 1e-9);
        }
    }

    #[test]
    fn open_loop_gain_margin_matches_pole_based_margin() {
        // The Bode gain margin of the open loop must agree with the
        // closed-loop pole-placement margin (g_max ≈ 2.11) — two
        // independent routes to the same §II-D guarantee.
        let fr = FrequencyResponse::sweep(&open_loop(0.79), 1e-3, 20_000);
        let gm = fr
            .gain_margin()
            .expect("integrator loop has a phase crossover");
        let pole_based = analysis::gain_margin(PidGains::paper(), 0.79, 1e-4);
        assert!(
            (gm - pole_based).abs() < 0.02,
            "Bode {gm} vs pole-placement {pole_based}"
        );
    }

    #[test]
    fn phase_margin_is_positive_for_the_stable_design() {
        let fr = FrequencyResponse::sweep(&open_loop(0.79), 1e-3, 5_000);
        let pm = fr.phase_margin().expect("gain crossover exists");
        assert!(
            pm > 0.0,
            "stable loop needs positive phase margin, got {pm}"
        );
    }

    #[test]
    fn phase_is_unwrapped() {
        let fr = FrequencyResponse::sweep(&open_loop(0.79), 1e-3, 2_000);
        for w in fr.points().windows(2) {
            assert!(
                (w[1].phase - w[0].phase).abs() < 1.0,
                "phase jump between consecutive sweep points"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sweep_needs_points() {
        FrequencyResponse::sweep(&open_loop(0.79), 1e-3, 1);
    }
}
