//! Control-theory toolkit used to design and analyze the CPM per-island
//! controllers.
//!
//! The paper designs its PIC (Per-Island Controller) as a discrete PID loop
//! around a first-order plant `P(t+1) = P(t) + a·d(t)`, analyzed in the
//! z-domain via pole placement (§II-D). This crate provides everything that
//! analysis needs, implemented from scratch:
//!
//! * [`poly`] — dense univariate polynomials over `f64`,
//! * [`complex`] — complex arithmetic,
//! * [`roots`] — Aberth–Ehrlich simultaneous root finding,
//! * [`tf`] — z-domain transfer functions (series/parallel/feedback
//!   composition, poles, stability, step response),
//! * [`pid`] — the PID control law, both as a runtime controller and as a
//!   transfer function for analysis,
//! * [`sysid`] — least-squares system identification (the paper's `aᵢ = 0.79`
//!   gain and the utilization→power regressions of Fig. 6),
//! * [`analysis`] — step-response metrics (overshoot, settling time,
//!   steady-state error) and stability-margin search (the paper's
//!   `0 < g < 2.1` guarantee),
//! * [`jury`] — the Jury stability criterion (algebraic unit-circle test,
//!   cross-validating the root finder),
//! * [`freq`] — frequency response sweeps with Bode-style gain/phase
//!   margins,
//! * [`locus`] — root-locus sweeps (pole trajectories vs a loop
//!   parameter),
//! * [`noise`] — seeded white-noise sources for the model-validation
//!   experiment (Fig. 5).

pub mod analysis;
pub mod complex;
pub mod freq;
pub mod jury;
pub mod locus;
pub mod noise;
pub mod pid;
pub mod poly;
pub mod roots;
pub mod sysid;
pub mod tf;

pub use analysis::{gain_margin, step_metrics, StepMetrics};
pub use complex::Complex;
pub use freq::FrequencyResponse;
pub use jury::{is_stable_jury, jury_test, JuryResult};
pub use locus::RootLocus;
pub use pid::{Pid, PidGains, PidTerms};
pub use poly::Polynomial;
pub use sysid::{
    fit_gain_through_origin, LinearFit, LinearRegression, QuadraticFit, QuadraticRegression,
};
pub use tf::TransferFunction;

/// Builds the paper's open-loop plant `P(z) = a / (z - 1)`, the z-transform
/// of the difference relation `P(t+1) = P(t) + a·d(t)` (paper Eq. 8/9).
pub fn island_plant(gain: f64) -> TransferFunction {
    TransferFunction::new(
        Polynomial::new(vec![gain]),
        Polynomial::new(vec![-1.0, 1.0]),
    )
}

/// Builds the closed-loop transfer function `Y(z) = P·C / (1 + P·C)` for the
/// paper's PID-controlled island power loop (Eq. 11).
///
/// ```
/// use cpm_control::{closed_loop, PidGains};
///
/// // The paper's design point is stable with zero steady-state error.
/// let cl = closed_loop(PidGains::paper(), 0.79);
/// assert!(cl.is_stable());
/// assert!((cl.dc_gain() - 1.0).abs() < 1e-9);
/// ```
pub fn closed_loop(gains: PidGains, plant_gain: f64) -> TransferFunction {
    let p = island_plant(plant_gain);
    let c = gains.transfer_function();
    p.series(&c).unity_feedback()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's design point: K_P = 0.4, K_I = 0.4, K_D = 0.3, a = 0.79.
    /// Eq. 12 gives the closed-loop transfer function
    /// `0.869(z² − 0.909z + 0.273) / ((z + 0.2995)(z² − 1.46z + 0.70))`
    /// (the published text drops digits; these are the values the algebra
    /// produces). All poles must lie strictly inside the unit circle.
    #[test]
    fn paper_design_point_is_stable() {
        let cl = closed_loop(PidGains::paper(), 0.79);
        assert!(cl.is_stable(), "paper design point must be stable");
        let poles = cl.poles();
        assert_eq!(poles.len(), 3);
        // One real pole near -0.30, complex pair with |z|² ≈ 0.70.
        // Exact algebra: D(z) = z³ − 1.131z² + 0.21z + 0.237
        //              = (z + 0.3366)(z² − 1.4676z + 0.7041…).
        // The paper prints the quadratic factor as (z² − 1.468z + 0.74) and
        // the real pole as −0.2995 — its two rounded factors are not quite
        // mutually consistent; the quadratic coefficient 1.4676 matches the
        // published 1.468 to its full precision, so we take the exact values
        // as ground truth and allow a loose band around the published ones.
        let real_pole = poles
            .iter()
            .find(|p| p.im.abs() < 1e-6)
            .expect("one real pole");
        assert!(
            (real_pole.re - (-0.3366)).abs() < 1e-3,
            "real pole ≈ -0.3366, got {}",
            real_pole.re
        );
        let complex_pole = poles
            .iter()
            .find(|p| p.im.abs() > 1e-6)
            .expect("complex pole pair");
        // Sum of the conjugate pair = 1.4676 (paper: 1.468).
        assert!((2.0 * complex_pole.re - 1.4676).abs() < 1e-3);
        // |pair|² ≈ 0.704 (paper rounds to 0.74).
        assert!((complex_pole.norm_sqr() - 0.704).abs() < 5e-3);
    }

    #[test]
    fn closed_loop_numerator_matches_eq12() {
        // N(z) = a·[(KP+KI+KD)z² − (KP+2KD)z + KD]
        //      = 0.869·z² − 0.79·z + 0.237 with the paper's constants.
        let cl = closed_loop(PidGains::paper(), 0.79);
        let num = cl.numerator();
        let c = num.coefficients();
        let lead = c[c.len() - 1];
        assert!((lead - 0.869).abs() < 1e-9, "leading coeff {lead}");
        assert!((c[c.len() - 2] - (-0.79)).abs() < 1e-9);
        assert!((c[c.len() - 3] - 0.237).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_dc_gain_is_unity() {
        // The integral term guarantees zero steady-state error, i.e. the
        // closed loop has unit DC gain (H(z=1) = 1).
        let cl = closed_loop(PidGains::paper(), 0.79);
        assert!((cl.dc_gain() - 1.0).abs() < 1e-9);
    }
}
