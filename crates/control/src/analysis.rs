//! Controller robustness analysis: the three metrics the paper designs for
//! (§II-A) and the stability-margin search (§II-D "Stability Guarantees").
//!
//! * **Maximum overshoot** — peak output above the reference.
//! * **Settling time** — controller invocations until the output stays
//!   within a tolerance band of its final value.
//! * **Steady-state error** — residual offset between output and reference
//!   once settled.

use crate::pid::PidGains;
use crate::tf::TransferFunction;

/// Step-response quality metrics for a closed-loop controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// `max(y) − reference`, as a fraction of the reference step (0 when the
    /// response never exceeds the reference).
    pub overshoot: f64,
    /// First invocation index after which the response stays inside
    /// `reference ± band`; `None` if it never settles within the horizon.
    pub settling_steps: Option<usize>,
    /// `|y[end] − reference|` at the end of the horizon, as a fraction of
    /// the reference step.
    pub steady_state_error: f64,
}

/// Computes [`StepMetrics`] from a recorded response `y` to a step of height
/// `reference`, with a settling band of `band` (fraction of the step, e.g.
/// `0.02` for ±2 %).
pub fn step_metrics(y: &[f64], reference: f64, band: f64) -> StepMetrics {
    assert!(!y.is_empty(), "empty response");
    assert!(reference != 0.0, "reference step must be nonzero");
    let peak = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let overshoot = ((peak - reference) / reference.abs()).max(0.0);
    let tol = band * reference.abs();
    // Walk backwards: find the last sample outside the band.
    let settling_steps = match y.iter().rposition(|&v| (v - reference).abs() > tol) {
        None => Some(0),
        Some(last_bad) if last_bad + 1 < y.len() => Some(last_bad + 1),
        Some(_) => None, // still outside the band at the end of the horizon
    };
    let steady_state_error = (y[y.len() - 1] - reference).abs() / reference.abs();
    StepMetrics {
        overshoot,
        settling_steps,
        steady_state_error,
    }
}

/// Computes the step metrics of a closed-loop transfer function over
/// `horizon` invocations with a unit reference.
pub fn closed_loop_step_metrics(cl: &TransferFunction, horizon: usize, band: f64) -> StepMetrics {
    let y = cl.step_response(horizon);
    step_metrics(&y, 1.0, band)
}

/// Finds the stability gain margin of the paper's PID loop: the largest `g`
/// such that the closed loop around the perturbed plant `g·a/(z−1)` remains
/// stable for all gains in `(0, g)`.
///
/// The paper reports `0 < g < 2.1` for its design point (`a = 0.79`,
/// `K = (0.4, 0.4, 0.3)`); Eq. 13 is the transfer function at the margin.
/// The search brackets the first instability with a coarse upward sweep and
/// then bisects to `tol`.
pub fn gain_margin(gains: PidGains, plant_gain: f64, tol: f64) -> f64 {
    let stable_at = |g: f64| crate::closed_loop(gains, g * plant_gain).is_stable();
    assert!(
        stable_at(1.0),
        "gain margin is only meaningful for a stable nominal design"
    );
    // Sweep upward to bracket the first instability.
    let mut lo = 1.0;
    let mut hi = 1.0;
    loop {
        hi *= 1.5;
        if !stable_at(hi) {
            break;
        }
        lo = hi;
        if hi > 1e6 {
            return f64::INFINITY;
        }
    }
    // Bisect [lo stable, hi unstable].
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if stable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_loop;

    #[test]
    fn metrics_of_ideal_response() {
        // Instantly settles on the reference.
        let y = vec![1.0; 10];
        let m = step_metrics(&y, 1.0, 0.02);
        assert_eq!(m.overshoot, 0.0);
        assert_eq!(m.settling_steps, Some(0));
        assert_eq!(m.steady_state_error, 0.0);
    }

    #[test]
    fn metrics_capture_overshoot() {
        let y = vec![0.0, 0.8, 1.3, 1.05, 1.0, 1.0, 1.0];
        let m = step_metrics(&y, 1.0, 0.02);
        assert!((m.overshoot - 0.3).abs() < 1e-12);
        assert_eq!(m.settling_steps, Some(4));
    }

    #[test]
    fn metrics_detect_unsettled_response() {
        let y = vec![0.0, 2.0, 0.0, 2.0];
        let m = step_metrics(&y, 1.0, 0.02);
        assert_eq!(m.settling_steps, None);
    }

    #[test]
    fn metrics_report_steady_state_offset() {
        // Converges to 0.9 with a 1.0 reference: 10 % steady-state error.
        let y = vec![0.5, 0.85, 0.9, 0.9, 0.9];
        let m = step_metrics(&y, 1.0, 0.02);
        assert!((m.steady_state_error - 0.1).abs() < 1e-12);
    }

    #[test]
    fn paper_design_settles_with_no_sse() {
        // The *linear* Eq. 12 closed loop (dominant pole modulus ≈ 0.84)
        // settles inside a ±2 % band in ~19 invocations with a transient
        // peak ≈ 40 % of the step. The paper's empirical "5–6 invocations,
        // overshoot ≤ 2 % of target" figures come from the quantized
        // simulation with small reference steps, where overshoot is quoted
        // relative to the target *level* (a 2-point step overshooting by
        // 40 % of the step is < 1 point ≈ 4 % of a ~20 % target — exactly
        // the paper's chip-level bound). Those are asserted in the
        // end-to-end tests of `cpm-core`; here we pin down the analytical
        // loop itself.
        let cl = closed_loop(PidGains::paper(), 0.79);
        let m = closed_loop_step_metrics(&cl, 80, 0.02);
        let settle = m.settling_steps.expect("must settle");
        assert!(settle <= 25, "settling in {settle} invocations");
        assert!(
            m.overshoot > 0.3 && m.overshoot < 0.45,
            "overshoot {}",
            m.overshoot
        );
        assert!(
            m.steady_state_error < 1e-2,
            "sse = {}",
            m.steady_state_error
        );
    }

    #[test]
    fn paper_gain_margin_is_about_2_1() {
        let g = gain_margin(PidGains::paper(), 0.79, 1e-4);
        assert!((g - 2.1).abs() < 0.05, "gain margin {g}");
    }

    #[test]
    fn perturbed_gain_within_margin_stays_stable() {
        let g_max = gain_margin(PidGains::paper(), 0.79, 1e-4);
        for frac in [0.1, 0.5, 0.9, 0.99] {
            let cl = closed_loop(PidGains::paper(), frac * g_max * 0.79);
            assert!(cl.is_stable(), "g = {} should be stable", frac * g_max);
        }
        let cl = closed_loop(PidGains::paper(), 1.01 * g_max * 0.79);
        assert!(!cl.is_stable(), "beyond the margin must be unstable");
    }

    #[test]
    fn pi_controller_still_removes_sse_but_overshoots_more() {
        // §II-D: dropping the D term deteriorates the dynamic response.
        let pid = closed_loop(PidGains::paper(), 0.79);
        let pi = closed_loop(PidGains::pi(0.4, 0.4), 0.79);
        let m_pid = closed_loop_step_metrics(&pid, 120, 0.02);
        let m_pi = closed_loop_step_metrics(&pi, 120, 0.02);
        assert!(m_pi.steady_state_error < 1e-3);
        assert!(
            m_pi.overshoot > m_pid.overshoot,
            "PI overshoot {} should exceed PID {}",
            m_pi.overshoot,
            m_pid.overshoot
        );
    }

    #[test]
    fn p_only_controller_has_nonzero_sse_for_lag_plant() {
        // For a plant *without* a free integrator — e.g. a first-order lag
        // 0.79/(z − 0.5) — proportional-only control leaves a steady-state
        // offset, which is §II-D's motivation for the I term.
        use crate::poly::Polynomial;
        let plant = TransferFunction::new(
            Polynomial::new(vec![0.79]),
            Polynomial::new(vec![-0.5, 1.0]),
        );
        let c = PidGains::p_only(0.4).transfer_function();
        let cl = plant.series(&c).unity_feedback();
        assert!(cl.is_stable());
        let m = closed_loop_step_metrics(&cl, 200, 0.02);
        assert!(
            m.steady_state_error > 0.05,
            "expected residual offset, got {}",
            m.steady_state_error
        );
    }

    #[test]
    #[should_panic(expected = "stable nominal design")]
    fn gain_margin_rejects_unstable_nominal() {
        // Huge gains destabilize the nominal loop.
        gain_margin(PidGains::new(5.0, 5.0, 5.0), 0.79, 1e-3);
    }
}
