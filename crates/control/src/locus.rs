//! Root-locus analysis: closed-loop pole trajectories as a loop parameter
//! sweeps.
//!
//! §II-D lists root locus among the formal methodologies for choosing
//! `K_P, K_I, K_D`. [`RootLocus`] sweeps a caller-supplied family of
//! closed-loop transfer functions (e.g. the PID island loop as the plant
//! gain perturbation `g` grows) and records every pole at every parameter
//! value, plus the critical parameter where the locus first leaves the
//! unit circle — an alternative derivation of the paper's `g < 2.1`
//! stability bound.

use crate::complex::Complex;
use crate::tf::TransferFunction;

/// The poles at one parameter value.
#[derive(Debug, Clone)]
pub struct LocusPoint {
    /// The swept parameter value.
    pub parameter: f64,
    /// All closed-loop poles at this value.
    pub poles: Vec<Complex>,
    /// Largest pole modulus.
    pub spectral_radius: f64,
}

/// A sampled root locus.
#[derive(Debug, Clone)]
pub struct RootLocus {
    points: Vec<LocusPoint>,
}

impl RootLocus {
    /// Sweeps `family(parameter)` over `n` evenly spaced values in
    /// `[lo, hi]`.
    pub fn sweep(family: impl Fn(f64) -> TransferFunction, lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least two sweep points");
        assert!(hi > lo, "empty sweep range");
        let points = (0..n)
            .map(|k| {
                let parameter = lo + (hi - lo) * k as f64 / (n - 1) as f64;
                let tf = family(parameter);
                let poles = tf.poles();
                let spectral_radius = poles.iter().fold(0.0f64, |m, p| m.max(p.norm()));
                LocusPoint {
                    parameter,
                    poles,
                    spectral_radius,
                }
            })
            .collect();
        Self { points }
    }

    /// The sampled locus points.
    pub fn points(&self) -> &[LocusPoint] {
        &self.points
    }

    /// The first parameter value at which the locus leaves the unit circle
    /// (linear interpolation between the bracketing samples); `None` when
    /// the whole sweep stays stable.
    pub fn instability_onset(&self) -> Option<f64> {
        self.points.windows(2).find_map(|w| {
            let (a, b) = (&w[0], &w[1]);
            if a.spectral_radius < 1.0 && b.spectral_radius >= 1.0 {
                let t = (1.0 - a.spectral_radius) / (b.spectral_radius - a.spectral_radius);
                Some(a.parameter + t * (b.parameter - a.parameter))
            } else {
                None
            }
        })
    }

    /// The largest spectral radius seen anywhere in the sweep.
    pub fn max_spectral_radius(&self) -> f64 {
        self.points
            .iter()
            .fold(0.0f64, |m, p| m.max(p.spectral_radius))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{closed_loop, PidGains};

    fn pid_locus(n: usize) -> RootLocus {
        RootLocus::sweep(|g| closed_loop(PidGains::paper(), g * 0.79), 0.05, 3.0, n)
    }

    #[test]
    fn onset_matches_the_bisected_gain_margin() {
        let locus = pid_locus(600);
        let onset = locus.instability_onset().expect("locus crosses the circle");
        let margin = crate::analysis::gain_margin(PidGains::paper(), 0.79, 1e-4);
        assert!(
            (onset - margin).abs() < 0.02,
            "locus onset {onset} vs bisection {margin}"
        );
    }

    #[test]
    fn poles_move_continuously() {
        // Adjacent parameter steps must not teleport the spectral radius —
        // a coarse sanity check that the sweep is fine enough to trust.
        let locus = pid_locus(400);
        for w in locus.points().windows(2) {
            assert!(
                (w[1].spectral_radius - w[0].spectral_radius).abs() < 0.05,
                "jump at g = {}",
                w[1].parameter
            );
        }
    }

    #[test]
    fn stable_sweep_has_no_onset() {
        let locus = RootLocus::sweep(|g| closed_loop(PidGains::paper(), g * 0.79), 0.1, 1.5, 100);
        assert!(locus.instability_onset().is_none());
        assert!(locus.max_spectral_radius() < 1.0);
    }

    #[test]
    fn every_point_carries_all_three_poles() {
        let locus = pid_locus(50);
        for p in locus.points() {
            assert_eq!(p.poles.len(), 3, "third-order loop at g = {}", p.parameter);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sweep_needs_points() {
        RootLocus::sweep(|g| closed_loop(PidGains::paper(), g * 0.79), 0.1, 1.0, 1);
    }
}
