//! A small deterministic property-test harness.
//!
//! The workspace's replacement for `proptest`: each property runs a fixed
//! number of cases, every case gets its own [`Xoshiro256pp`] child stream
//! (so failures reproduce exactly from the printed case index), and the
//! property body draws its inputs from that stream with the generator
//! helpers on the RNG itself.
//!
//! ```
//! use cpm_rng::check;
//!
//! check::forall("abs is nonnegative", |rng| {
//!     let x = rng.f64_in(-100.0, 100.0);
//!     assert!(x.abs() >= 0.0);
//! });
//! ```
//!
//! Assertion failures panic with the case index in the payload, so a
//! failing run prints `property 'name' failed at case k` and rerunning is
//! bit-identical — no shrink files, no persistence, no flakes.

use crate::Xoshiro256pp;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 256;

/// Root seed for all properties; fixed so CI and local runs agree.
pub const ROOT_SEED: u64 = 0xC0FF_EE00_BEEF_CAFE;

/// Runs `body` for [`DEFAULT_CASES`] deterministic cases.
pub fn forall(name: &str, body: impl Fn(&mut Xoshiro256pp)) {
    forall_cases(name, DEFAULT_CASES, body);
}

/// Runs `body` for `cases` deterministic cases, each on its own stream.
pub fn forall_cases(name: &str, cases: usize, body: impl Fn(&mut Xoshiro256pp)) {
    // Fold the property name into the seed so two properties in one test
    // binary never see identical input streams.
    let name_hash = name
        .bytes()
        .fold(ROOT_SEED, |h, b| crate::SplitMix64::mix(h ^ b as u64));
    for case in 0..cases {
        let mut rng = Xoshiro256pp::child(name_hash, case as u64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property '{name}' failed at case {case}/{cases}: {detail}");
        }
    }
}

/// Draws a `Vec<f64>` with length in `[min_len, max_len)` and elements in
/// `[lo, hi)` — the most common proptest strategy in the old suites.
pub fn vec_f64(
    rng: &mut Xoshiro256pp,
    lo: f64,
    hi: f64,
    min_len: usize,
    max_len: usize,
) -> Vec<f64> {
    let n = rng.usize_in(min_len, max_len);
    (0..n).map(|_| rng.f64_in(lo, hi)).collect()
}

/// Draws a `Vec<u64>` with length in `[min_len, max_len)` and elements in
/// `[0, below)`.
pub fn vec_u64(rng: &mut Xoshiro256pp, below: u64, min_len: usize, max_len: usize) -> Vec<u64> {
    let n = rng.usize_in(min_len, max_len);
    (0..n).map(|_| rng.below(below)).collect()
}

/// Picks one element of a slice.
pub fn pick<'a, T>(rng: &mut Xoshiro256pp, options: &'a [T]) -> &'a T {
    &options[rng.usize_in(0, options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case() {
        let count = std::cell::Cell::new(0usize);
        forall_cases("counting", 37, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 37);
    }

    #[test]
    fn cases_see_distinct_inputs() {
        let seen = std::cell::RefCell::new(std::collections::HashSet::new());
        forall_cases("distinct", 64, |rng| {
            assert!(seen.borrow_mut().insert(rng.next_u64()));
        });
    }

    #[test]
    fn failures_carry_the_case_index() {
        let err = std::panic::catch_unwind(|| {
            forall_cases("always-fails", 8, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("failed at case 0/8"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn same_property_name_reruns_identically() {
        let a = std::cell::RefCell::new(Vec::new());
        forall_cases("stable-stream", 16, |rng| {
            a.borrow_mut().push(rng.next_u64())
        });
        let b = std::cell::RefCell::new(Vec::new());
        forall_cases("stable-stream", 16, |rng| {
            b.borrow_mut().push(rng.next_u64())
        });
        assert_eq!(*a.borrow(), *b.borrow());
    }

    #[test]
    fn vec_helpers_respect_bounds() {
        forall_cases("vec-bounds", 64, |rng| {
            let v = vec_f64(rng, -2.0, 3.0, 1, 17);
            assert!((1..17).contains(&v.len()));
            assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
            let u = vec_u64(rng, 10, 2, 5);
            assert!((2..5).contains(&u.len()));
            assert!(u.iter().all(|&x| x < 10));
        });
    }
}
