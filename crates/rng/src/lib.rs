//! Deterministic in-tree random numbers for the whole workspace.
//!
//! Every stochastic component of the reproduction — address streams, phase
//! generators, white-noise excitation — draws from this crate, so the
//! workspace builds with **zero crates.io dependencies** and every
//! experiment is bit-for-bit reproducible across machines, worker counts,
//! and rustc versions.
//!
//! Two layers:
//!
//! 1. [`SplitMix64`] — a 64-bit mixing generator used exclusively for
//!    *seeding*: expanding one `u64` seed into xoshiro state, and deriving
//!    decorrelated child seeds for independent simulation cells.
//! 2. [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the workhorse
//!    generator: 256-bit state, period 2²⁵⁶−1, passes BigCrush.
//!
//! ## Stream discipline
//!
//! Parallel experiment cells must not share a generator — that would make
//! results depend on execution order. Instead every cell derives its own
//! stream from a root seed:
//!
//! ```
//! use cpm_rng::Xoshiro256pp;
//!
//! let root = 42;
//! let mut cell_a = Xoshiro256pp::child(root, 0); // (seed, index) → stream
//! let mut cell_b = Xoshiro256pp::child(root, 1);
//! assert_ne!(cell_a.next_u64(), cell_b.next_u64());
//! assert_eq!(
//!     Xoshiro256pp::child(root, 0).next_u64(),
//!     Xoshiro256pp::child(root, 0).next_u64(),
//! );
//! ```
//!
//! Child seeds are hashed through SplitMix64, so distinct `(seed, index)`
//! pairs land in far-apart regions of the sequence space; for streams that
//! need a *guaranteed* 2¹²⁸-step separation, [`Xoshiro256pp::jump`] applies
//! the xoshiro jump polynomial.
//!
//! The [`check`] module is a small property-test harness built on these
//! generators (the workspace's replacement for `proptest`).

pub mod bank;
pub mod check;

pub use bank::XoshiroBank;

/// SplitMix64 (Steele, Lea & Flood): the standard seeding generator for
/// xoshiro-family state expansion.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment.
    pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-shot avalanche mix of a single value (stateless helper for
    /// combining seeds with stream/cell indices).
    pub fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(Self::GAMMA);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's general-purpose generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds by expanding `seed` through SplitMix64 (the construction the
    /// xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 is a bijection of a counter, so four consecutive
        // outputs are never all zero; the assert documents the invariant
        // xoshiro needs rather than guarding a reachable state.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// Derives the `index`-th child stream of `seed`: the deterministic
    /// per-cell generator used by parallel experiment sweeps. Distinct
    /// `(seed, index)` pairs give decorrelated streams; identical pairs
    /// give identical streams regardless of worker count or run order.
    pub fn child(seed: u64, index: u64) -> Self {
        // Mix the index with a distinct constant before folding it into
        // the seed so (s, i) and (s+1, i-1)-style collisions cannot occur
        // along simple lattice directions.
        let folded =
            SplitMix64::mix(seed) ^ SplitMix64::mix(index.wrapping_mul(0xA076_1D64_78BD_642F));
        Self::seed_from_u64(folded)
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`. Uses the Lemire multiply-shift map; the
    /// ≤ n/2⁶⁴ bias is irrelevant for simulation workloads and the mapping
    /// is branch-free and deterministic.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `f64` in `[-1, 1]` (closed upper end matters only at f64
    /// resolution; kept for parity with the old `rand` range).
    #[inline]
    pub fn signed_unit(&mut self) -> f64 {
        self.f64_in(-1.0, 1.0)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Zero-mean unit-variance Gaussian via Box–Muller.
    ///
    /// Setup-time only (process-variation draws, workload placement):
    /// the transcendentals go through the sanctioned libm gateway. Hot
    /// per-step paths never draw Gaussians.
    pub fn next_gaussian(&mut self) -> f64 {
        // u1 in (0, 1] keeps ln() finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * cpm_math::reference::ln(u1)).sqrt()
            * cpm_math::reference::cos(std::f64::consts::TAU * u2)
    }

    /// Advances the state by 2¹²⁸ steps (the xoshiro256 jump polynomial):
    /// partitions the period into guaranteed non-overlapping half-period
    /// segments for long-lived sibling streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for word in JUMP {
            for b in 0..64 {
                if (word & (1u64 << b)) != 0 {
                    for (acc, cur) in s.iter_mut().zip(self.s.iter()) {
                        *acc ^= cur;
                    }
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c (Vigna).
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_matches_reference_vectors() {
        // xoshiro256++ seeded with s = [1, 2, 3, 4]: first outputs from the
        // public-domain xoshiro256plusplus.c (Blackman & Vigna).
        let mut x = Xoshiro256pp { s: [1, 2, 3, 4] };
        let expected = [
            41_943_041u64,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
        ];
        for e in expected {
            assert_eq!(x.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = Xoshiro256pp::seed_from_u64(8);
        assert_ne!(a[0], c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval_and_fills_it() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        let xs: Vec<f64> = (0..10_000).map(|_| r.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(xs.iter().any(|&x| x < 0.01) && xs.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn below_is_always_in_range() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        for n in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges_roughly_uniformly() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((8000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro256pp::seed_from_u64(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = a.clone();
        b.jump();
        let pa: std::collections::HashSet<u64> = (0..4096).map(|_| a.next_u64()).collect();
        assert!((0..4096).all(|_| !pa.contains(&b.next_u64())));
    }

    #[test]
    fn children_are_reproducible_and_distinct() {
        for i in 0..32u64 {
            let mut a = Xoshiro256pp::child(99, i);
            let mut b = Xoshiro256pp::child(99, i);
            assert_eq!(
                (0..32).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..32).map(|_| b.next_u64()).collect::<Vec<_>>(),
            );
        }
        let first: Vec<u64> = (0..32)
            .map(|i| Xoshiro256pp::child(99, i).next_u64())
            .collect();
        let distinct: std::collections::HashSet<&u64> = first.iter().collect();
        assert_eq!(distinct.len(), first.len(), "child streams collided");
    }
}
