//! Structure-of-arrays xoshiro256++ bank for lane-chunked kernels.
//!
//! [`XoshiroBank`] holds the four state words of many independent
//! [`Xoshiro256pp`] streams as parallel `Vec<u64>` columns, so a batch
//! kernel can step a contiguous run of streams in one pass over the
//! columns — the layout LLVM autovectorizes (the xoshiro update is pure
//! add/rotate/xor/shift, all exact integer ops). Bit-identity with the
//! scalar generator is structural, not numerical: each lane applies the
//! token-identical update expression to the same state words, and
//! integer arithmetic has no rounding, so lane `i` of the bank produces
//! *exactly* the sequence `Xoshiro256pp` seeded the same way would.
//!
//! The scalar `*_at` accessors mirror the [`Xoshiro256pp`] draw helpers
//! one-for-one (same derivation expressions) for tail lanes and for
//! draws that are inherently conditional (e.g. a redraw only some lanes
//! take) and therefore cannot be batched.

use crate::Xoshiro256pp;

/// Parallel-column state for a bank of independent xoshiro256++ streams.
///
/// Lane `i` is an independent generator: pushing a [`Xoshiro256pp`]
/// transfers its state verbatim, and every draw on lane `i` advances
/// only lane `i` — so per-lane draw sequences are identical to running
/// the scalar generators side by side, regardless of how draws on
/// different lanes interleave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XoshiroBank {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
}

impl XoshiroBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of streams in the bank.
    pub fn len(&self) -> usize {
        self.s0.len()
    }

    /// True when the bank holds no streams.
    pub fn is_empty(&self) -> bool {
        self.s0.is_empty()
    }

    /// Appends a stream, transferring the generator's state verbatim.
    pub fn push(&mut self, rng: Xoshiro256pp) {
        self.s0.push(rng.s[0]);
        self.s1.push(rng.s[1]);
        self.s2.push(rng.s[2]);
        self.s3.push(rng.s[3]);
    }

    /// Clones lane `i` back out as a standalone generator (continues the
    /// lane's sequence without advancing the bank).
    pub fn get(&self, i: usize) -> Xoshiro256pp {
        Xoshiro256pp {
            s: [self.s0[i], self.s1[i], self.s2[i], self.s3[i]],
        }
    }

    /// Next 64-bit output of lane `i` — the exact
    /// [`Xoshiro256pp::next_u64`] update applied to lane `i`'s state.
    #[inline]
    pub fn next_u64_at(&mut self, i: usize) -> u64 {
        let result = self.s0[i]
            .wrapping_add(self.s3[i])
            .rotate_left(23)
            .wrapping_add(self.s0[i]);
        let t = self.s1[i] << 17;
        self.s2[i] ^= self.s0[i];
        self.s3[i] ^= self.s1[i];
        self.s1[i] ^= self.s2[i];
        self.s0[i] ^= self.s3[i];
        self.s2[i] ^= t;
        self.s3[i] = self.s3[i].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` from lane `i` (same derivation as
    /// [`Xoshiro256pp::next_f64`]).
    #[inline]
    pub fn next_f64_at(&mut self, i: usize) -> f64 {
        (self.next_u64_at(i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)` from lane `i` (same Lemire map as
    /// [`Xoshiro256pp::below`]).
    #[inline]
    pub fn below_at(&mut self, i: usize, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64_at(i) as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)` from lane `i` (same derivation as
    /// [`Xoshiro256pp::f64_in`]).
    #[inline]
    pub fn f64_in_at(&mut self, i: usize, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64_at(i) * (hi - lo)
    }

    /// Uniform `f64` in `[-1, 1]` from lane `i` (same derivation as
    /// [`Xoshiro256pp::signed_unit`]).
    #[inline]
    pub fn signed_unit_at(&mut self, i: usize) -> f64 {
        self.f64_in_at(i, -1.0, 1.0)
    }

    /// Batch pass: one `next_f64` draw from each of the `out.len()`
    /// consecutive lanes starting at `start`, written to `out` in lane
    /// order. The per-lane update and f64 derivation are token-identical
    /// to the scalar path; the loop runs column-wise so LLVM can
    /// vectorize it, and because every operation is exact (integer state
    /// update, single int→float conversion, one multiply by a power of
    /// two) the results are bit-identical to `out.len()` scalar calls.
    pub fn fill_next_f64(&mut self, start: usize, out: &mut [f64]) {
        let end = start + out.len();
        let s0 = &mut self.s0[start..end];
        let s1 = &mut self.s1[start..end];
        let s2 = &mut self.s2[start..end];
        let s3 = &mut self.s3[start..end];
        for l in 0..out.len() {
            let result = s0[l]
                .wrapping_add(s3[l])
                .rotate_left(23)
                .wrapping_add(s0[l]);
            let t = s1[l] << 17;
            s2[l] ^= s0[l];
            s3[l] ^= s1[l];
            s1[l] ^= s2[l];
            s0[l] ^= s3[l];
            s2[l] ^= t;
            s3[l] = s3[l].rotate_left(45);
            out[l] = (result >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_lanes(n: usize) -> Vec<Xoshiro256pp> {
        (0..n)
            .map(|i| Xoshiro256pp::child(0xBA2C, i as u64))
            .collect()
    }

    fn bank_of(lanes: &[Xoshiro256pp]) -> XoshiroBank {
        let mut bank = XoshiroBank::new();
        for rng in lanes {
            bank.push(rng.clone());
        }
        bank
    }

    #[test]
    fn scalar_accessors_match_standalone_generators_bitwise() {
        let mut lanes = scalar_lanes(13);
        let mut bank = bank_of(&lanes);
        for round in 0..50 {
            for (i, rng) in lanes.iter_mut().enumerate() {
                // Interleave every draw kind; lane state must track the
                // standalone generator exactly.
                match (round + i) % 4 {
                    0 => assert_eq!(bank.next_u64_at(i), rng.next_u64()),
                    1 => assert_eq!(bank.next_f64_at(i).to_bits(), rng.next_f64().to_bits()),
                    2 => assert_eq!(bank.below_at(i, 3), rng.below(3)),
                    _ => assert_eq!(
                        bank.signed_unit_at(i).to_bits(),
                        rng.signed_unit().to_bits()
                    ),
                }
            }
        }
        for (i, rng) in lanes.iter().enumerate() {
            assert_eq!(&bank.get(i), rng);
        }
    }

    #[test]
    fn batch_fill_matches_scalar_draws_bitwise() {
        // Sizes straddle lane-width multiples; offsets exercise interior
        // windows of the columns.
        for n in [1usize, 2, 7, 8, 9, 16, 33] {
            let mut lanes = scalar_lanes(n);
            let mut bank = bank_of(&lanes);
            let mut out = vec![0.0f64; n];
            for _ in 0..20 {
                bank.fill_next_f64(0, &mut out);
                for (i, rng) in lanes.iter_mut().enumerate() {
                    assert_eq!(
                        out[i].to_bits(),
                        rng.next_f64().to_bits(),
                        "lane {i} of {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_fill_with_offset_advances_only_the_window() {
        let lanes = scalar_lanes(10);
        let mut bank = bank_of(&lanes);
        let mut out = [0.0f64; 4];
        bank.fill_next_f64(3, &mut out);
        for (i, rng) in lanes.iter().enumerate() {
            let mut expect = rng.clone();
            if (3..7).contains(&i) {
                assert_eq!(out[i - 3].to_bits(), expect.next_f64().to_bits());
            }
            assert_eq!(&bank.get(i), &expect, "lane {i} state");
        }
    }

    #[test]
    fn empty_fill_is_a_no_op() {
        let lanes = scalar_lanes(3);
        let mut bank = bank_of(&lanes);
        bank.fill_next_f64(1, &mut []);
        for (i, rng) in lanes.iter().enumerate() {
            assert_eq!(&bank.get(i), rng);
        }
    }
}
