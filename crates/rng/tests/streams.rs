//! Stream-discipline properties: the guarantees parallel experiment cells
//! rely on. Child streams must be (a) exactly reproducible from their
//! `(seed, index)` coordinates and (b) pairwise non-overlapping over the
//! prefixes any simulation actually consumes.

use cpm_rng::{check, SplitMix64, Xoshiro256pp};
use std::collections::HashSet;

#[test]
fn child_streams_are_reproducible_for_arbitrary_coordinates() {
    check::forall("child reproducibility", |rng| {
        let seed = rng.next_u64();
        let index = rng.below(1 << 20);
        let mut a = Xoshiro256pp::child(seed, index);
        let mut b = Xoshiro256pp::child(seed, index);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

#[test]
fn sibling_prefixes_never_overlap() {
    // 64 siblings × 2048 outputs each: every 64-bit value across all
    // prefixes must be unique. A shared subsequence (overlapping streams)
    // would collide here with certainty; unrelated streams collide with
    // probability ≈ (64·2048)²/2⁶⁴ ≈ 10⁻⁹.
    check::forall_cases("sibling disjointness", 8, |rng| {
        let seed = rng.next_u64();
        let mut seen: HashSet<u64> = HashSet::new();
        for index in 0..64 {
            let mut s = Xoshiro256pp::child(seed, index);
            for _ in 0..2048 {
                assert!(
                    seen.insert(s.next_u64()),
                    "streams of seed {seed:#x} overlap at child {index}"
                );
            }
        }
    });
}

#[test]
fn nearby_seeds_produce_unrelated_children() {
    // Adjacent root seeds (the pattern experiment configs actually use:
    // seed, seed+1, …) must not produce correlated child streams.
    check::forall_cases("seed avalanche", 32, |rng| {
        let seed = rng.next_u64();
        let mut a = Xoshiro256pp::child(seed, 0);
        let mut b = Xoshiro256pp::child(seed.wrapping_add(1), 0);
        let matches = (0..512).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0, "adjacent seeds {seed:#x} correlate");
    });
}

#[test]
fn lattice_coordinates_do_not_collide() {
    // (seed+k, index) vs (seed, index+k) and similar lattice moves must
    // map to different streams — the mix constant on the index guards
    // exactly this.
    let base = 0xDEAD_BEEF_u64;
    let mut firsts = HashSet::new();
    for ds in 0..32u64 {
        for di in 0..32u64 {
            let mut s = Xoshiro256pp::child(base + ds, di);
            assert!(
                firsts.insert(s.next_u64()),
                "lattice collision at (+{ds}, {di})"
            );
        }
    }
}

#[test]
fn jump_partitions_are_disjoint_for_many_jumps() {
    let mut stream = Xoshiro256pp::seed_from_u64(7);
    let mut seen = HashSet::new();
    for segment in 0..8 {
        let mut probe = stream.clone();
        for _ in 0..1024 {
            assert!(
                seen.insert(probe.next_u64()),
                "jump segment {segment} overlaps an earlier one"
            );
        }
        stream.jump();
    }
}

#[test]
fn mix_is_a_bijection_on_small_ranges() {
    // SplitMix64's finalizer is bijective; spot-check injectivity over a
    // contiguous window (collisions would break child-seed derivation).
    let outputs: HashSet<u64> = (0..1u64 << 16).map(SplitMix64::mix).collect();
    assert_eq!(outputs.len(), 1 << 16);
}
