//! Accuracy and agreement property sweeps for the deterministic kernels.
//!
//! Sample points come from the repo's own generator (`cpm-rng`), so the
//! sweeps are reproducible run to run and machine to machine; the libm
//! side of each comparison is whatever the host ships, which is exactly
//! the point — the kernels must sit within the acceptance bound of *any*
//! conforming libm, not track one vendor's bits.
//!
//! Acceptance bound: ≤ 2 ulp (ISSUE 9). Observed: ≤ 1 ulp everywhere
//! these sweeps look, including huge phase arguments through the range
//! reduction.

use cpm_math::{exp_det, exp_into, sin_det, sin_into};
use cpm_rng::Xoshiro256pp;

/// Distance in units-in-the-last-place between two finite f64s, via the
/// monotone map from float space onto a signed integer line (negative
/// floats fold below zero), so the distance is well-defined across 0.
fn ulp_diff(a: f64, b: f64) -> u64 {
    fn onto_line(x: f64) -> i64 {
        let b = x.to_bits() as i64;
        if b < 0 {
            i64::MIN - b
        } else {
            b
        }
    }
    onto_line(a).abs_diff(onto_line(b))
}

fn assert_sin_within(rng: &mut Xoshiro256pp, lo: f64, hi: f64, samples: usize, domain: &str) {
    let mut worst = 0u64;
    let mut worst_x = 0.0;
    for _ in 0..samples {
        // Sweep both signs: sin is odd and the quadrant logic works on
        // two's-complement bits, so negative arguments are a distinct
        // code path worth equal coverage.
        let x = rng.f64_in(lo, hi) * if rng.chance(0.5) { -1.0 } else { 1.0 };
        let d = ulp_diff(sin_det(x), x.sin());
        if d > worst {
            worst = d;
            worst_x = x;
        }
    }
    assert!(
        worst <= 2,
        "sin_det {domain}: worst {worst} ulp at x={worst_x:e} (bound 2)"
    );
}

fn assert_exp_within(rng: &mut Xoshiro256pp, lo: f64, hi: f64, samples: usize, domain: &str) {
    let mut worst = 0u64;
    let mut worst_x = 0.0;
    for _ in 0..samples {
        let x = rng.f64_in(lo, hi);
        let d = ulp_diff(exp_det(x), x.exp());
        if d > worst {
            worst = d;
            worst_x = x;
        }
    }
    assert!(
        worst <= 2,
        "exp_det {domain}: worst {worst} ulp at x={worst_x:e} (bound 2)"
    );
}

/// How many points each domain sweep draws. The nightly CI lane runs
/// this suite in release where 200k points/domain takes ~10 ms; under
/// Miri the suite is capped much smaller (see `miri_sized_smoke`).
const SAMPLES: usize = 200_000;

#[test]
fn sin_ulp_sweep_operating_domains() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x51AE_0001);
    // Phase-term domain: one period of the slow workload oscillation.
    assert_sin_within(&mut rng, 0.0, 6.3, SAMPLES, "one period");
    // Accumulated phase over the longest scenarios (elapsed/period grows
    // without wraparound in PhaseBank).
    assert_sin_within(&mut rng, 0.0, 1e4, SAMPLES, "scenario-length phase");
    // Far past operating range: the reduction must not fall apart.
    assert_sin_within(&mut rng, 0.0, 1e6, SAMPLES, "1e6 stress");
    assert_sin_within(&mut rng, 0.0, 1e8, SAMPLES, "1e8 stress");
    // Tiny arguments, where sin(x) ≈ x must be exact-ish.
    assert_sin_within(&mut rng, 0.0, 1e-6, SAMPLES, "tiny");
}

#[test]
fn exp_ulp_sweep_operating_domains() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x0E_0002);
    // Leakage domain: the thermal-voltage exponent stays within a few
    // units of zero across every reachable (V, T) pair.
    assert_exp_within(&mut rng, -5.0, 5.0, SAMPLES, "leakage exponents");
    // Full finite range up to the saturation edges.
    assert_exp_within(&mut rng, -700.0, 700.0, SAMPLES, "wide finite");
    // The subnormal-result band, where the two-factor scaling degrades
    // gradually instead of flushing.
    assert_exp_within(&mut rng, -745.0, -708.0, SAMPLES, "subnormal results");
}

#[test]
fn sin_subnormal_arguments_are_exact() {
    // sin(x) = x to f64 precision for all subnormals; the kernels must
    // not flush or misround them.
    let mut rng = Xoshiro256pp::seed_from_u64(0x5B_0003);
    for _ in 0..20_000 {
        let bits = rng.below(1u64 << 52); // all positive subnormals + 0
        let x = f64::from_bits(bits);
        assert_eq!(sin_det(x).to_bits(), x.to_bits(), "sin({x:e})");
        assert_eq!(sin_det(-x).to_bits(), (-x).to_bits(), "sin({:e})", -x);
    }
}

#[test]
fn exp_saturation_edges_match_libm() {
    // Walk the saturation boundaries in ulp steps. The bit-line ulp
    // metric places +inf one past the largest finite and 0 below the
    // smallest subnormal, so the ≤ 2 ulp bound also pins *where*
    // saturation begins to within an argument-ulp of libm's threshold.
    let mut x = 709.7f64;
    for _ in 0..2_000 {
        let d = ulp_diff(exp_det(x), x.exp());
        assert!(d <= 2, "exp({x:.17e}) at overflow edge: {d} ulp");
        x = f64::from_bits(x.to_bits() + 1);
    }
    let mut x = -745.0f64;
    for _ in 0..2_000 {
        let d = ulp_diff(exp_det(x), x.exp());
        assert!(d <= 2, "exp({x:.17e}) at underflow edge: {d} ulp");
        x = f64::from_bits(x.to_bits() + 1); // toward zero: less negative
    }
}

#[test]
fn scalar_vs_lane_bits_agree_at_random_lengths() {
    // The structural guarantee (shared per-element helpers) pinned
    // empirically: random columns at non-lane-multiple lengths, random
    // magnitudes spanning tiny to huge, compared to_bits per element.
    let mut rng = Xoshiro256pp::seed_from_u64(0x1A_0004);
    for _ in 0..200 {
        let n = rng.usize_in(0, 67); // covers 0, tails 1..7, multi-chunk
        let xs: Vec<f64> = (0..n)
            .map(|_| {
                let mag = rng.f64_in(-8.0, 8.0); // log10 magnitude
                let x = rng.signed_unit() * cpm_math::reference::powf(10.0, mag);
                if rng.chance(0.02) {
                    f64::NAN
                } else {
                    x
                }
            })
            .collect();
        let mut got = vec![0.0; n];
        sin_into(&xs, &mut got);
        for i in 0..n {
            assert_eq!(
                got[i].to_bits(),
                sin_det(xs[i]).to_bits(),
                "sin lane/scalar split at [{i}] of {n}, x={:e}",
                xs[i]
            );
        }
        exp_into(&xs, &mut got);
        for i in 0..n {
            assert_eq!(
                got[i].to_bits(),
                exp_det(xs[i]).to_bits(),
                "exp lane/scalar split at [{i}] of {n}, x={:e}",
                xs[i]
            );
        }
    }
}

#[test]
fn miri_sized_smoke() {
    // A tiny cross-section of every sweep above, so `cargo miri test`
    // exercises the kernels' bit manipulation (to_bits/from_bits, the
    // magic-shift extraction) in minutes rather than hours.
    let mut rng = Xoshiro256pp::seed_from_u64(0x3117_0005);
    assert_sin_within(&mut rng, 0.0, 1e4, 64, "miri sin");
    assert_exp_within(&mut rng, -5.0, 5.0, 64, "miri exp");
    let xs: Vec<f64> = (0..13).map(|_| rng.f64_in(-20.0, 20.0)).collect();
    let mut got = vec![0.0; 13];
    sin_into(&xs, &mut got);
    exp_into(&xs, &mut got);
    for (i, &x) in xs.iter().enumerate() {
        assert_eq!(got[i].to_bits(), exp_det(x).to_bits());
    }
}
