//! Deterministic, autovectorizable `sin`/`exp` kernels.
//!
//! The kilocore chip step spends its floor in libm: one `sin` per core
//! (the workload phase term) and one `exp` per core (leakage), serial
//! calls that LLVM cannot vectorize and whose bit patterns depend on the
//! host's libm version — which is exactly what the scenario goldens pin.
//! This crate replaces both with repo-owned kernels that are
//!
//! * **deterministic across platforms**: pure f64 arithmetic (every
//!   operation IEEE-754-exactly specified, no FMA contraction in Rust),
//!   so the same input produces the same bits on every host, and
//! * **autovectorizable**: no data-dependent branches anywhere in the
//!   hot region — quadrant selection and overflow saturation are bit
//!   masks and clamps, not `if`s — so the `LANES`-chunked variants
//!   compile to SIMD exactly like the arithmetic passes they sit between.
//!
//! # Range reduction (Cody–Waite)
//!
//! Both kernels start by writing the argument as `x = n·C + r` with `n`
//! integral and `|r|` small, where `C` is `π/2` (sin) or `ln 2` (exp).
//! `n` is extracted branch-free with the *magic-shift* trick: for
//! `|t| < 2^51`, `(t + 1.5·2^52) - 1.5·2^52` rounds `t` to the nearest
//! integer using nothing but two additions, and the low mantissa bits of
//! the shifted sum *are* that integer in two's complement — so the
//! quadrant `n mod 4` falls out of `to_bits()` with no float→int cast.
//!
//! The remainder `r = x − n·C` would lose everything to cancellation if
//! `C` were a single f64, so `C` is split into chunks with zeroed low
//! mantissa bits (`n·C_hi` is then *exact* for the magnitudes the chunk
//! widths admit) and subtracted chunk by chunk — three refinement steps
//! for `π/2` (the fdlibm schedule, yielding a double-double `y0 + y1`
//! remainder), one hi/lo pair for `ln 2`. Chunked subtraction keeps the
//! remainder accurate to well below one ulp out to `|x| ≈ 1e8`, far past
//! the simulator's operating domains (phase arguments reach ~1e4 over
//! the longest scenarios; leakage exponents stay within ±1).
//!
//! # Polynomial kernels
//!
//! On the reduced interval the functions are approximated by fixed-degree
//! minimax polynomials (the classic fdlibm coefficient sets, whose kernel
//! error is < 2⁻⁵⁷): degree-13 odd for `sin`, degree-14 even for `cos`
//! (both quadrant halves are always evaluated, then blended by mask), and
//! the degree-5 rational form for `exp`. Every polynomial runs in one
//! fixed Horner order — no early exits, no special-case branches — which
//! is what lets LLVM turn the lane loops into packed multiplies.
//!
//! The observed accuracy, enforced by the property sweeps in
//! `tests/accuracy.rs`, is ≤ 1 ulp against the host libm across all
//! operating domains (the acceptance bound is 2 ulp), with edge cases
//! (±0, subnormals, saturation, ±inf, NaN) matching libm exactly.
//!
//! # Scalar/lane bit-identity by construction
//!
//! [`sin_lanes`]/[`exp_lanes`] do not re-derive the math: each lane
//! applies the *same* `#[inline(always)]` per-element helpers
//! ([`sin_det`]/[`exp_det`] are those helpers applied to one element), in
//! the same evaluation order, over `[f64; L]` stack arrays. Since every
//! f64 operation is exactly specified and lanes never interact, the lane
//! result is bit-identical to `L` scalar calls — structurally, not by
//! testing luck (the tests pin it anyway). The slice drivers
//! [`sin_into`]/[`exp_into`] chunk a column through the lane kernels with
//! a scalar tail, preserving the same guarantee at any length.
//!
//! # What this crate is *not*
//!
//! Not a libm. Only the two functions the hot paths need are
//! deterministic kernels; everything else the codebase wants
//! (`ln`, `powf`, `cos` in cold paths, accuracy baselines) goes through
//! [`reference`](mod@reference), which wraps the host libm and is the
//! *only* sanctioned
//! way to call it outside this crate (the `math-scope` lint rule
//! enforces that).

#![allow(clippy::excessive_precision)] // why: coefficients transcribed verbatim from the published fdlibm tables; trimming digits invites transcription error

pub mod reference;

/// Lane width of the chunked drivers ([`sin_into`]/[`exp_into`]): eight
/// f64 lanes = two 4-wide (AVX2) or four 2-wide (SSE2/NEON) vectors —
/// the same width as every other lane kernel in the workspace.
pub const LANES: usize = 8;

/// `1.5·2^52`: adding then subtracting this rounds to the nearest
/// integer (ties to even) for `|t| < 2^51`, and leaves that integer in
/// the low mantissa bits of the shifted sum.
const SHIFT: f64 = 6755399441055744.0;

// ---------------------------------------------------------------------
// sin
// ---------------------------------------------------------------------

// The reduction constants are decimal literals (const `f64::from_bits`
// needs Rust 1.83; MSRV is 1.75) — each is the shortest roundtrip form
// of an exact bit pattern, pinned to those bits by `constant_bits` in
// the test module below.

/// `2/π`, correctly rounded (bits `0x3FE45F306DC9C883`).
const TWO_OVER_PI: f64 = std::f64::consts::FRAC_2_PI;
/// `π/2` split into four chunks with zeroed low mantissa bits, so
/// `n·PIO2_k` is exact for the `n` magnitudes the reduction admits.
/// `PIO2_1 + PIO2_2 + PIO2_3 + PIO2_3T ≈ π/2` to ~130 significant bits.
/// Bits: `0x3FF921FB50000000`, `0x3E5110B460000000`, `0x3C91A62630000000`,
/// `0x3AE8A2E03707344A`.
const PIO2_1: f64 = 1.5707963109016418;
const PIO2_2: f64 = 1.5893254712295857e-08;
const PIO2_3: f64 = 6.123233932053594e-17;
const PIO2_3T: f64 = 6.36831716351095e-25;

/// Minimax coefficients for `sin(x)/x` on `|x| ≤ π/4` (the fdlibm
/// `__kernel_sin` set; kernel error < 2⁻⁵⁷·⁷).
const S1: f64 = -1.66666666666666324348e-01;
const S2: f64 = 8.33333333332248946124e-03;
const S3: f64 = -1.98412698298579493134e-04;
const S4: f64 = 2.75573137070700676789e-06;
const S5: f64 = -2.50507602534068634195e-08;
const S6: f64 = 1.58969099521155010221e-10;

/// Minimax coefficients for `cos` on `|x| ≤ π/4` (the fdlibm
/// `__kernel_cos` set).
const C1: f64 = 4.16666666666666019037e-02;
const C2: f64 = -1.38888888888741095749e-03;
const C3: f64 = 2.48015872894767294178e-05;
const C4: f64 = -2.75573143513906633035e-07;
const C5: f64 = 2.08757232129817482790e-09;
const C6: f64 = -1.13596475577881948265e-11;

/// Branch-free `x = n·(π/2) + (y0 + y1)`: the double-double remainder
/// and the raw bits of the magic-shifted quotient (whose low two bits
/// are `n mod 4`, two's-complement, so negative `n` needs no special
/// case).
#[inline(always)]
fn reduce_pio2(x: f64) -> (f64, f64, u64) {
    let big = x * TWO_OVER_PI + SHIFT;
    let q = big.to_bits();
    let n = big - SHIFT;
    // Chunked subtraction: r0 is exact cancellation (n·PIO2_1 carries
    // no rounding for reachable n), then two refinement steps fold in
    // the lower chunks, tracking the error term of each subtraction.
    let r0 = x - n * PIO2_1;
    let w1 = n * PIO2_2;
    let r1 = r0 - w1;
    let w2 = n * PIO2_3;
    let r2 = r1 - w2;
    let w3 = n * PIO2_3T - ((r1 - r2) - w2);
    let y0 = r2 - w3;
    let y1 = (r2 - y0) - w3;
    (y0, y1, q)
}

/// `sin(y0 + y1)` for `|y0| ≤ π/4` — the fdlibm kernel expression, which
/// folds the reduction tail `y1` in at first order so huge-argument
/// results keep sub-ulp accuracy.
#[inline(always)]
fn ksin(x: f64, y: f64) -> f64 {
    let z = x * x;
    let v = z * x;
    let r = S2 + z * (S3 + z * (S4 + z * (S5 + z * S6)));
    x - ((z * (0.5 * y - v * r) - y) - v * S1)
}

/// `cos(y0 + y1)` for `|y0| ≤ π/4` — the fdlibm kernel expression; the
/// `1 − z/2` head is computed in two pieces so its rounding error is
/// reinstated alongside the polynomial tail.
#[inline(always)]
fn kcos(x: f64, y: f64) -> f64 {
    let z = x * x;
    let r = z * (C1 + z * (C2 + z * (C3 + z * (C4 + z * (C5 + z * C6)))));
    let hz = 0.5 * z;
    let w = 1.0 - hz;
    w + (((1.0 - w) - hz) + (z * r - x * y))
}

/// Quadrant blend, branch-free: bit `0` of `q` picks cos over sin, bit
/// `1` flips the sign — `sin(x) = ±[sin|cos](r)` by quadrant. Masks and
/// xors only, so the lane loop stays a straight-line SIMD body.
#[inline(always)]
fn combine(s: f64, c: f64, q: u64) -> f64 {
    let m = (q & 1).wrapping_neg();
    let picked = (s.to_bits() & !m) | (c.to_bits() & m);
    f64::from_bits(picked ^ ((q & 2) << 62))
}

/// Deterministic `sin(x)`.
///
/// Bit-identical on every platform (pure f64 arithmetic, fixed
/// evaluation order) and to the corresponding lane of [`sin_lanes`] /
/// [`sin_into`] (same inlined per-element expressions). Accuracy is
/// ≤ 1 observed ulp against libm for `|x| ≲ 1e8`; `±0` and subnormals
/// are exact, non-finite inputs return NaN as libm does.
#[inline]
pub fn sin_det(x: f64) -> f64 {
    let (y0, y1, q) = reduce_pio2(x);
    combine(ksin(y0, y1), kcos(y0, y1), q)
}

/// Lane-chunked [`sin_det`]: `out[l] = sin_det(xs[l])`, bit-identical by
/// construction, structured as elementwise passes over stack arrays so
/// LLVM autovectorizes the whole body (reduction, both kernels, blend).
pub fn sin_lanes<const L: usize>(xs: &[f64; L], out: &mut [f64; L]) {
    let mut y0 = [0.0; L];
    let mut y1 = [0.0; L];
    let mut q = [0u64; L];
    for l in 0..L {
        let (a, b, c) = reduce_pio2(xs[l]);
        y0[l] = a;
        y1[l] = b;
        q[l] = c;
    }
    let mut s = [0.0; L];
    let mut c = [0.0; L];
    for l in 0..L {
        s[l] = ksin(y0[l], y1[l]);
        c[l] = kcos(y0[l], y1[l]);
    }
    for l in 0..L {
        out[l] = combine(s[l], c[l], q[l]);
    }
}

/// Column driver: `out[i] = sin_det(xs[i])` over whole slices, chunked
/// through [`sin_lanes`] with a scalar tail. Entry `i` is bit-identical
/// to the scalar call regardless of where the chunk boundary falls.
pub fn sin_into(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "one output slot per input");
    let mut base = 0;
    while base + LANES <= xs.len() {
        let x: &[f64; LANES] = xs[base..base + LANES].try_into().unwrap();
        let o: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().unwrap();
        sin_lanes(x, o);
        base += LANES;
    }
    for i in base..xs.len() {
        out[i] = sin_det(xs[i]);
    }
}

// ---------------------------------------------------------------------
// exp
// ---------------------------------------------------------------------

/// `1/ln 2`, correctly rounded (bits `0x3FF71547652B82FE`; decimal
/// literals for the same MSRV reason as the sin constants).
const INV_LN2: f64 = std::f64::consts::LOG2_E;
/// `ln 2` split hi/lo: `LN2_HI` has 26 zeroed low mantissa bits, so
/// `n·LN2_HI` is exact for every reachable `n` (|n| ≤ 1075).
/// Bits: `0x3FE62E42F8000000`, `0x3E4BE8E7BCD5E4F2`.
const LN2_HI: f64 = 0.6931471675634384;
const LN2_LO: f64 = 1.2996506893889889e-08;

/// Minimax coefficients of the fdlibm `exp` rational kernel on
/// `|r| ≤ ln(2)/2`.
const P1: f64 = 1.66666666666666019037e-01;
const P2: f64 = -2.77777777770155933842e-03;
const P3: f64 = 6.61375632143793436117e-05;
const P4: f64 = -1.65339022054652515390e-06;
const P5: f64 = 4.13813679705723846039e-08;

/// The shared per-element `exp` body (see [`exp_det`] for the contract).
#[inline(always)]
fn exp_elem(x: f64) -> f64 {
    // Saturate outside the finite range: exp(709.9) already overflows
    // to +inf and exp(-745.2) underflows past the smallest subnormal,
    // so clamping changes no finite result — it only keeps `n` inside
    // the magic-shift window with no data-dependent branch. NaN passes
    // through `clamp` untouched.
    let x = x.clamp(-745.2, 709.9);
    let big = x * INV_LN2 + SHIFT;
    let n = big - SHIFT;
    // r = x − n·ln2, hi/lo-chunked like the sin reduction; `lo` is kept
    // separate so the kernel can reinstate it at full precision.
    let hi = x - n * LN2_HI;
    let lo = n * LN2_LO;
    let r = hi - lo;
    // fdlibm rational kernel: exp(r) = 1 + r + r·c/(2−c) with c a
    // degree-5 polynomial in r² — shorter than the Taylor chain that
    // reaches the same sub-ulp kernel error.
    let t = r * r;
    let c = r - t * (P1 + t * (P2 + t * (P3 + t * (P4 + t * P5))));
    let y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
    // Scale by 2^n as *two* exact power-of-two factors: n clamps to the
    // normal-exponent range and the remainder goes into a second
    // factor, so results degrade gracefully through the subnormal range
    // down to 0 and up to +inf — no branches, no integer shifts (the
    // exponent bits come from the same magic-shift trick, which SSE2
    // can vectorize; an i64 arithmetic shift cannot).
    let nf1 = n.clamp(-1022.0, 1023.0);
    let nf2 = n - nf1;
    let s1 = f64::from_bits(((nf1 + SHIFT).to_bits().wrapping_add(1023) & 0x7FF) << 52);
    let s2 = f64::from_bits(((nf2 + SHIFT).to_bits().wrapping_add(1023) & 0x7FF) << 52);
    (y * s1) * s2
}

/// Deterministic `exp(x)`.
///
/// Bit-identical on every platform and to the corresponding lane of
/// [`exp_lanes`] / [`exp_into`]. Accuracy is ≤ 1 observed ulp against
/// libm over the finite range; overflow saturates to `+inf`, underflow
/// to `0` through the subnormals, exactly where libm saturates, and NaN
/// propagates.
#[inline]
pub fn exp_det(x: f64) -> f64 {
    exp_elem(x)
}

/// Lane-chunked [`exp_det`]: `out[l] = exp_det(xs[l])`, bit-identical by
/// construction (the body is branch-free, so the loop vectorizes whole).
pub fn exp_lanes<const L: usize>(xs: &[f64; L], out: &mut [f64; L]) {
    for l in 0..L {
        out[l] = exp_elem(xs[l]);
    }
}

/// Column driver: `out[i] = exp_det(xs[i])` over whole slices, chunked
/// through [`exp_lanes`] with a scalar tail (same guarantee as
/// [`sin_into`]).
pub fn exp_into(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "one output slot per input");
    let mut base = 0;
    while base + LANES <= xs.len() {
        let x: &[f64; LANES] = xs[base..base + LANES].try_into().unwrap();
        let o: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().unwrap();
        exp_lanes(x, o);
        base += LANES;
    }
    for i in base..xs.len() {
        out[i] = exp_elem(xs[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bits() {
        // The reduction constants are written as shortest-roundtrip
        // decimal literals (MSRV: const `f64::from_bits` needs 1.83);
        // this pins each literal to the exact bit pattern the kernels
        // were derived for.
        assert_eq!(TWO_OVER_PI.to_bits(), 0x3FE45F306DC9C883);
        assert_eq!(PIO2_1.to_bits(), 0x3FF921FB50000000);
        assert_eq!(PIO2_2.to_bits(), 0x3E5110B460000000);
        assert_eq!(PIO2_3.to_bits(), 0x3C91A62630000000);
        assert_eq!(PIO2_3T.to_bits(), 0x3AE8A2E03707344A);
        assert_eq!(INV_LN2.to_bits(), 0x3FF71547652B82FE);
        assert_eq!(LN2_HI.to_bits(), 0x3FE62E42F8000000);
        assert_eq!(LN2_LO.to_bits(), 0x3E4BE8E7BCD5E4F2);
    }

    #[test]
    fn sin_edge_cases_match_libm_bitwise() {
        for x in [
            0.0,
            -0.0,
            5e-324,
            -5e-324,
            1e-310,
            f64::MIN_POSITIVE,
            1e-9,
            0.5,
            std::f64::consts::FRAC_PI_2,
            std::f64::consts::PI,
            std::f64::consts::TAU,
        ] {
            assert_eq!(
                sin_det(x).to_bits(),
                x.sin().to_bits(),
                "sin_det({x:e}) must match libm exactly"
            );
        }
        assert!(sin_det(f64::NAN).is_nan());
        assert!(sin_det(f64::INFINITY).is_nan());
        assert!(sin_det(f64::NEG_INFINITY).is_nan());
    }

    #[test]
    fn sin_preserves_signed_zero() {
        assert_eq!(sin_det(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(sin_det(0.0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn exp_saturation_matches_libm() {
        // Overflow: +inf from the first argument libm overflows at.
        assert_eq!(exp_det(710.0), f64::INFINITY);
        assert_eq!(exp_det(1e9), f64::INFINITY);
        assert_eq!(exp_det(f64::INFINITY), f64::INFINITY);
        // Underflow: through the subnormals to exact zero.
        assert_eq!(exp_det(-745.0).to_bits(), (-745.0f64).exp().to_bits());
        assert_eq!(exp_det(-745.0), 5e-324);
        assert_eq!(exp_det(-746.0), 0.0);
        assert_eq!(exp_det(-1e9), 0.0);
        assert_eq!(exp_det(f64::NEG_INFINITY), 0.0);
        // Identity points.
        assert_eq!(exp_det(0.0), 1.0);
        assert_eq!(exp_det(-0.0), 1.0);
        assert!(exp_det(f64::NAN).is_nan());
    }

    #[test]
    fn lane_kernels_are_bit_identical_to_scalars() {
        // A handful of awkward points through the array path; the dense
        // randomized agreement sweep lives in tests/accuracy.rs.
        let xs = [
            -0.0,
            1.0e8,
            -3.9,
            std::f64::consts::PI,
            707.0,
            -745.1,
            f64::NAN,
            0.3,
        ];
        let mut out = [0.0; 8];
        sin_lanes(&xs, &mut out);
        for l in 0..8 {
            assert_eq!(out[l].to_bits(), sin_det(xs[l]).to_bits(), "sin lane {l}");
        }
        exp_lanes(&xs, &mut out);
        for l in 0..8 {
            assert_eq!(out[l].to_bits(), exp_det(xs[l]).to_bits(), "exp lane {l}");
        }
    }

    #[test]
    fn slice_drivers_match_scalars_at_non_lane_multiple_lengths() {
        for n in [0usize, 1, 5, 7, 8, 9, 13, 16, 33] {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64) * 0.7 - 2.0).collect();
            let mut out = vec![0.0; n];
            sin_into(&xs, &mut out);
            for i in 0..n {
                assert_eq!(
                    out[i].to_bits(),
                    sin_det(xs[i]).to_bits(),
                    "sin[{i}] of {n}"
                );
            }
            exp_into(&xs, &mut out);
            for i in 0..n {
                assert_eq!(
                    out[i].to_bits(),
                    exp_det(xs[i]).to_bits(),
                    "exp[{i}] of {n}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per input")]
    fn sin_into_rejects_length_mismatch() {
        sin_into(&[1.0, 2.0], &mut [0.0]);
    }

    #[test]
    #[should_panic(expected = "one output slot per input")]
    fn exp_into_rejects_length_mismatch() {
        exp_into(&[1.0], &mut []);
    }

    #[test]
    fn reference_wrappers_are_the_host_libm() {
        assert_eq!(reference::sin(0.7).to_bits(), 0.7f64.sin().to_bits());
        assert_eq!(reference::cos(0.7).to_bits(), 0.7f64.cos().to_bits());
        assert_eq!(reference::exp(0.7).to_bits(), 0.7f64.exp().to_bits());
        assert_eq!(reference::ln(0.7).to_bits(), 0.7f64.ln().to_bits());
        assert_eq!(
            reference::powf(0.7, 1.3).to_bits(),
            0.7f64.powf(1.3).to_bits()
        );
    }
}
