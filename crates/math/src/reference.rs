//! The sanctioned gateway to the host libm.
//!
//! Cold paths (controller gain schedules, policy utility curves, the
//! Gaussian tail in `cpm-rng`) and the accuracy baselines still want the
//! host's transcendentals — they either never touch a golden trajectory
//! or exist precisely to *measure* the deterministic kernels against
//! libm. Routing them through this module keeps the `math-scope` lint
//! rule simple: a bare `.sin()`/`.exp()`/`.ln()`/`.powf()` in a library
//! crate is always a violation, and the handful of legitimate libm uses
//! are greppable as `reference::` calls (plus the two documented
//! `*_reference` hot-path twins, which carry waivers).
//!
//! Nothing here is deterministic across platforms. Do not let a value
//! produced by this module reach a golden digest.

/// Host-libm `sin`. Cold paths and accuracy baselines only.
#[inline]
pub fn sin(x: f64) -> f64 {
    x.sin()
}

/// Host-libm `cos`. Cold paths and accuracy baselines only.
#[inline]
pub fn cos(x: f64) -> f64 {
    x.cos()
}

/// Host-libm `exp`. Cold paths and accuracy baselines only.
#[inline]
pub fn exp(x: f64) -> f64 {
    x.exp()
}

/// Host-libm `ln`. Cold paths and accuracy baselines only.
#[inline]
pub fn ln(x: f64) -> f64 {
    x.ln()
}

/// Host-libm `log10`. Cold paths and accuracy baselines only.
#[inline]
pub fn log10(x: f64) -> f64 {
    x.log10()
}

/// Host-libm `powf`. Cold paths and accuracy baselines only.
#[inline]
pub fn powf(x: f64, y: f64) -> f64 {
    x.powf(y)
}
