//! Typed physical quantities and entity identifiers shared across the CPM
//! workspace.
//!
//! Every quantity is a thin `f64` newtype with the arithmetic that makes
//! physical sense for it (you can add two powers, scale a power by a float,
//! divide an energy by a time to get a power, …). Dimensionally silly
//! operations simply don't exist, which catches a whole class of unit bugs
//! (Hz-vs-MHz, W-vs-mW) at compile time.
//!
//! The identifiers ([`CoreId`], [`IslandId`]) are also newtypes so a core
//! index can never be silently used where an island index is expected.

pub mod ids;
pub mod quantities;

pub use ids::{BenchmarkId, CoreId, IslandId};
pub use quantities::{Celsius, Hertz, Joules, Ratio, Seconds, Volts, Watts};

/// Convenience prelude: `use cpm_units::prelude::*;`.
pub mod prelude {
    pub use crate::ids::{BenchmarkId, CoreId, IslandId};
    pub use crate::quantities::{Celsius, Hertz, Joules, Ratio, Seconds, Volts, Watts};
}
