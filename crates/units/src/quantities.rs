//! Scalar physical quantities as `f64` newtypes.
//!
//! A small macro generates the shared boilerplate (construction, accessors,
//! same-unit addition/subtraction, scaling by a dimensionless factor,
//! comparisons). Cross-unit operations that correspond to real physics
//! (`Watts * Seconds = Joules`, `Joules / Seconds = Watts`, …) are written
//! out explicitly below.

//! ```
//! use cpm_units::{Watts, Seconds, Hertz};
//!
//! // Dimensional arithmetic: power × time = energy.
//! let energy = Watts::new(10.0) * Seconds::from_ms(100.0);
//! assert!((energy.value() - 1.0).abs() < 1e-12);
//! // Cycles elapsed in one millisecond at 2 GHz.
//! assert_eq!(Hertz::from_ghz(2.0).cycles_in(Seconds::from_ms(1.0)), 2.0e6);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value expressed in the base unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True when the underlying value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Dimensionless ratio of two like quantities.
            #[inline]
            pub fn ratio_of(self, denom: Self) -> f64 {
                self.0 / denom.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Temperature in degrees Celsius.
    ///
    /// The thermal model works entirely in temperature *differences* above
    /// ambient plus an ambient offset, so Celsius (rather than Kelvin) keeps
    /// the values human-readable without affecting the physics.
    Celsius,
    "°C"
);

impl Hertz {
    /// Constructs a frequency from a megahertz value.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1.0e6)
    }

    /// Constructs a frequency from a gigahertz value.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1.0e9)
    }

    /// The value expressed in megahertz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.value() / 1.0e6
    }

    /// The value expressed in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.value() / 1.0e9
    }

    /// Number of clock cycles elapsed in `dt` at this frequency.
    #[inline]
    pub fn cycles_in(self, dt: Seconds) -> f64 {
        self.value() * dt.value()
    }

    /// Duration of one clock period.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

impl Seconds {
    /// Constructs a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: f64) -> Self {
        Self::new(ms * 1.0e-3)
    }

    /// Constructs a duration from microseconds.
    #[inline]
    pub const fn from_us(us: f64) -> Self {
        Self::new(us * 1.0e-6)
    }

    /// The value expressed in milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.value() * 1.0e3
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy = power × time.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power = energy / time.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Time a power draw can be sustained from an energy store.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

/// A dimensionless ratio, always stored as a plain fraction (1.0 == 100 %).
///
/// Used for utilization, activity factors, and budget fractions. The
/// constructor does not clamp — callers that need a bounded value (e.g. CPU
/// utilization) use [`Ratio::clamped`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ratio(f64);

impl Ratio {
    /// 0 %.
    pub const ZERO: Self = Self(0.0);
    /// 100 %.
    pub const ONE: Self = Self(1.0);

    /// Wraps a plain fraction.
    #[inline]
    pub const fn new(fraction: f64) -> Self {
        Self(fraction)
    }

    /// Constructs from a percentage value (e.g. `Ratio::from_percent(80.0)`).
    #[inline]
    pub const fn from_percent(percent: f64) -> Self {
        Self(percent / 100.0)
    }

    /// The underlying fraction.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The value expressed as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Clamps into `[0, 1]`.
    #[inline]
    pub fn clamped(self) -> Self {
        Self(self.0.clamp(0.0, 1.0))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.percent())
    }
}

impl Add for Ratio {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Ratio {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Ratio {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul<Watts> for Ratio {
    type Output = Watts;
    /// A fraction of a power value.
    #[inline]
    fn mul(self, rhs: Watts) -> Watts {
        rhs * self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_same_unit() {
        let a = Watts::new(3.0) + Watts::new(4.5);
        assert_eq!(a, Watts::new(7.5));
        assert_eq!(a - Watts::new(0.5), Watts::new(7.0));
    }

    #[test]
    fn scaling_by_dimensionless() {
        assert_eq!(Hertz::from_mhz(100.0) * 2.0, Hertz::from_mhz(200.0));
        assert_eq!(2.0 * Volts::new(1.1), Volts::new(2.2));
        assert_eq!(Joules::new(8.0) / 2.0, Joules::new(4.0));
    }

    #[test]
    fn like_division_is_dimensionless() {
        let r: f64 = Watts::new(40.0) / Watts::new(80.0);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn power_time_energy_roundtrip() {
        let e = Watts::new(10.0) * Seconds::from_ms(100.0);
        assert!((e.value() - 1.0).abs() < 1e-12);
        let p = e / Seconds::from_ms(100.0);
        assert!((p.value() - 10.0).abs() < 1e-12);
        let t = e / Watts::new(10.0);
        assert!((t.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn frequency_conversions() {
        let f = Hertz::from_ghz(2.0);
        assert!((f.mhz() - 2000.0).abs() < 1e-9);
        assert!((f.ghz() - 2.0).abs() < 1e-12);
        assert!((f.cycles_in(Seconds::from_ms(1.0)) - 2.0e6).abs() < 1.0);
        assert!((f.period().value() - 0.5e-9).abs() < 1e-21);
    }

    #[test]
    fn ratio_percent_roundtrip() {
        let r = Ratio::from_percent(80.0);
        assert!((r.value() - 0.8).abs() < 1e-12);
        assert!((r.percent() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_clamping() {
        assert_eq!(Ratio::new(1.7).clamped(), Ratio::ONE);
        assert_eq!(Ratio::new(-0.3).clamped(), Ratio::ZERO);
        assert_eq!(Ratio::new(0.42).clamped(), Ratio::new(0.42));
    }

    #[test]
    fn ratio_of_power() {
        let p = Ratio::from_percent(50.0) * Watts::new(80.0);
        assert_eq!(p, Watts::new(40.0));
    }

    #[test]
    fn min_max_clamp() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Seconds::new(5.0).clamp(a, b), b);
        assert_eq!(Seconds::new(0.5).clamp(a, b), a);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Watts = [1.0, 2.0, 3.0].iter().map(|&w| Watts::new(w)).sum();
        assert_eq!(total, Watts::new(6.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Watts::new(2.5)), "2.5 W");
        assert_eq!(format!("{}", Ratio::from_percent(12.5)), "12.50%");
    }

    #[test]
    fn neg_and_abs() {
        let e = Watts::new(3.0) - Watts::new(5.0);
        assert_eq!(e, Watts::new(-2.0));
        assert_eq!(e.abs(), Watts::new(2.0));
        assert_eq!(-e, Watts::new(2.0));
    }
}
