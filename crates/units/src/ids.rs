//! Typed indices for the entities of a chip-multiprocessor.
//!
//! All three are plain `usize` wrappers with `Ord`/`Hash`, suitable as map
//! keys and for direct indexing of per-entity `Vec`s.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a processor core within the chip (chip-global numbering).
    CoreId,
    "core"
);
id_type!(
    /// Index of a voltage/frequency island within the chip.
    IslandId,
    "island"
);
id_type!(
    /// Index of a benchmark within the workload roster.
    BenchmarkId,
    "bench"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn ids_are_ordered_and_usable_as_map_keys() {
        let mut m = BTreeMap::new();
        m.insert(IslandId(2), "i2");
        m.insert(IslandId(0), "i0");
        assert_eq!(m[&IslandId(2)], "i2");
        assert!(CoreId(1) < CoreId(3));
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(CoreId(5).to_string(), "core5");
        assert_eq!(IslandId(1).to_string(), "island1");
        assert_eq!(BenchmarkId(7).to_string(), "bench7");
    }

    #[test]
    fn from_usize_roundtrip() {
        let c: CoreId = 9usize.into();
        assert_eq!(c.index(), 9);
    }
}
