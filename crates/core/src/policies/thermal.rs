//! The thermal-aware provisioning policy (§IV-A).
//!
//! "In this thermal-aware policy, we never provision more than [a cap] of
//! total target power to two nearby islands for successive intervals …
//! Additionally, a particular core cannot get more than [a cap] of the
//! total power budget for 4 consecutive GPM invocation cycles. If these
//! constraints are violated, we assume that a hotspot occurs."
//!
//! The policy wraps an inner policy (performance-aware by default),
//! tracks how long each island and each adjacent pair has been above its
//! cap, and clamps allocations *before* the streak reaches the violation
//! length, redistributing the shaved power to the coolest islands. The
//! same constraint bookkeeping, run in observe-only mode against another
//! policy's allocations, produces Fig. 18(c)'s "percentage duration of
//! violations".

use crate::gpm::{IslandFeedback, ProvisioningPolicy};
use cpm_obs::{EventPayload, Recorder, ThermalSource};
use cpm_units::{IslandId, Watts};

pub use crate::gpm::ViolationStats;

/// The spatio-temporal constraint set.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConstraints {
    /// Pairs of physically adjacent islands (floorplan neighbours).
    pub adjacent_pairs: Vec<(IslandId, IslandId)>,
    /// An adjacent pair may not jointly hold more than this fraction of
    /// the budget for [`Self::pair_streak`] consecutive intervals.
    pub pair_cap: f64,
    /// Consecutive-interval limit for pair violations (paper: 2).
    pub pair_streak: usize,
    /// A single island may not hold more than this fraction of the budget
    /// for [`Self::single_streak`] consecutive intervals.
    pub single_cap: f64,
    /// Consecutive-interval limit for single-island violations (paper: 4).
    pub single_streak: usize,
}

impl ThermalConstraints {
    /// The paper's Fig. 18(a) configuration: 8 single-core islands in a
    /// 2×4 grid, pairs (0,1), (2,3), (4,5), (6,7) as "nearby cores". The
    /// published text loses the exact caps to OCR; these are set just
    /// below the performance policy's natural allocation spread (equal
    /// share = 12.5 % of budget per island, ~25 % per pair) so the
    /// constraint is *binding* — pairs of hot cores must take turns, which
    /// is the stringency the paper describes.
    pub fn paper_eight_island() -> Self {
        Self {
            adjacent_pairs: (0..4)
                .map(|k| (IslandId(2 * k), IslandId(2 * k + 1)))
                .collect(),
            pair_cap: 0.22,
            pair_streak: 2,
            single_cap: 0.13,
            single_streak: 4,
        }
    }

    /// Constraints for a chip with `islands` islands laid out linearly:
    /// consecutive islands are adjacent.
    pub fn linear(islands: usize, pair_cap: f64, single_cap: f64) -> Self {
        Self {
            adjacent_pairs: (0..islands.saturating_sub(1))
                .map(|i| (IslandId(i), IslandId(i + 1)))
                .collect(),
            pair_cap,
            pair_streak: 2,
            single_cap,
            single_streak: 4,
        }
    }
}

/// Constraint tracker usable standalone (observe-only) or inside the
/// policy (enforcing).
#[derive(Debug, Clone)]
pub struct ConstraintTracker {
    constraints: ThermalConstraints,
    single_streaks: Vec<usize>,
    pair_streaks: Vec<usize>,
    stats: ViolationStats,
    recorder: Recorder,
}

impl ConstraintTracker {
    /// Creates a tracker over `islands` islands.
    pub fn new(constraints: ThermalConstraints, islands: usize) -> Self {
        for (a, b) in &constraints.adjacent_pairs {
            assert!(
                a.index() < islands && b.index() < islands,
                "pair out of range"
            );
        }
        Self {
            single_streaks: vec![0; islands],
            pair_streaks: vec![0; constraints.adjacent_pairs.len()],
            constraints,
            stats: ViolationStats::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a flight-recorder handle; completed violation streaks then
    /// emit [`EventPayload::ThermalViolation`] events.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The constraint set.
    pub fn constraints(&self) -> &ThermalConstraints {
        &self.constraints
    }

    /// Accumulated violation statistics.
    pub fn stats(&self) -> &ViolationStats {
        &self.stats
    }

    /// Records one interval's allocations and returns whether any streak
    /// crossed its violation limit this interval.
    pub fn observe(&mut self, budget: Watts, alloc: &[Watts]) -> bool {
        assert_eq!(alloc.len(), self.single_streaks.len());
        self.stats.intervals += 1;
        let mut violated = false;
        let single_cap = budget.value() * self.constraints.single_cap;
        for (i, (streak, a)) in self.single_streaks.iter_mut().zip(alloc).enumerate() {
            if a.value() > single_cap + 1e-9 {
                *streak += 1;
                if *streak >= self.constraints.single_streak {
                    violated = true;
                    self.recorder.record(EventPayload::ThermalViolation {
                        source: ThermalSource::SingleIslandCap,
                        island: i as u32,
                        partner: u32::MAX,
                        value: a.value(),
                        limit: single_cap,
                    });
                }
            } else {
                *streak = 0;
            }
        }
        let pair_cap = budget.value() * self.constraints.pair_cap;
        for (k, (a, b)) in self.constraints.adjacent_pairs.iter().enumerate() {
            let joint = alloc[a.index()].value() + alloc[b.index()].value();
            if joint > pair_cap + 1e-9 {
                self.pair_streaks[k] += 1;
                if self.pair_streaks[k] >= self.constraints.pair_streak {
                    violated = true;
                    self.recorder.record(EventPayload::ThermalViolation {
                        source: ThermalSource::AdjacentPairCap,
                        island: a.index() as u32,
                        partner: b.index() as u32,
                        value: joint,
                        limit: pair_cap,
                    });
                }
            } else {
                self.pair_streaks[k] = 0;
            }
        }
        if violated {
            self.stats.violated_intervals += 1;
        }
        violated
    }

    /// Whether island `i`'s next interval above its cap would complete a
    /// violation streak.
    fn single_at_risk(&self, i: usize) -> bool {
        self.single_streaks[i] + 1 >= self.constraints.single_streak
    }

    /// Whether pair `k`'s next interval above its cap would complete a
    /// violation streak.
    fn pair_at_risk(&self, k: usize) -> bool {
        self.pair_streaks[k] + 1 >= self.constraints.pair_streak
    }
}

/// Thermal-aware policy: inner policy + preemptive constraint enforcement.
pub struct ThermalAware {
    inner: Box<dyn ProvisioningPolicy + Send>,
    tracker: ConstraintTracker,
}

impl ThermalAware {
    /// Wraps `inner` with the given constraints over `islands` islands.
    pub fn new(
        inner: Box<dyn ProvisioningPolicy + Send>,
        constraints: ThermalConstraints,
        islands: usize,
    ) -> Self {
        Self {
            inner,
            tracker: ConstraintTracker::new(constraints, islands),
        }
    }

    /// Accumulated (post-enforcement) violation statistics — should stay at
    /// zero; nonzero means the constraints are mutually unsatisfiable.
    pub fn stats(&self) -> &ViolationStats {
        self.tracker.stats()
    }
}

impl ProvisioningPolicy for ThermalAware {
    fn name(&self) -> &'static str {
        "thermal-aware"
    }

    fn provision(&mut self, budget: Watts, feedback: &[IslandFeedback]) -> Vec<Watts> {
        let mut alloc = self.inner.provision(budget, feedback);
        let c = self.tracker.constraints().clone();
        // Preemptive single-island clamping: if one more capped interval
        // would complete a streak, pull the island below its cap now. The
        // shaved power is deliberately *stranded* — handing it to another
        // island could push that island (or its pair) over its own cap,
        // and keeping the region cool is the whole point. That stranding
        // is the performance price Fig. 18(b) shows.
        let single_cap = budget.value() * c.single_cap;
        for (i, a) in alloc.iter_mut().enumerate() {
            if a.value() > single_cap && self.tracker.single_at_risk(i) {
                *a = Watts::new(single_cap);
            }
        }
        // Preemptive pair clamping: shave the hotter member down to what
        // the pair cap leaves after the cooler member's share.
        let pair_cap = budget.value() * c.pair_cap;
        for (k, (a, b)) in c.adjacent_pairs.iter().enumerate() {
            let (ia, ib) = (a.index(), b.index());
            let joint = alloc[ia].value() + alloc[ib].value();
            if joint > pair_cap && self.tracker.pair_at_risk(k) {
                let (hot, cool) = if feedback[ia].peak_temperature >= feedback[ib].peak_temperature
                {
                    (ia, ib)
                } else {
                    (ib, ia)
                };
                // Shave the hotter member first; if it bottoms out before
                // the pair fits under the cap, shave the cooler one too.
                let excess = joint - pair_cap;
                let from_hot = alloc[hot].value().min(excess);
                alloc[hot] = Watts::new(alloc[hot].value() - from_hot);
                let rest = excess - from_hot;
                if rest > 0.0 {
                    alloc[cool] = Watts::new((alloc[cool].value() - rest).max(0.0));
                }
            }
        }
        self.tracker.observe(budget, &alloc);
        alloc
    }

    fn violation_stats(&self) -> Option<&ViolationStats> {
        Some(self.tracker.stats())
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.tracker.set_recorder(recorder);
    }
}

impl std::fmt::Debug for ThermalAware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThermalAware")
            .field("inner", &self.inner.name())
            .field("stats", self.tracker.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::performance::PerformanceAware;
    use cpm_units::Ratio;

    fn fb(i: usize, temp: f64) -> IslandFeedback {
        IslandFeedback {
            island: IslandId(i),
            allocated: Watts::new(10.0),
            actual_power: Watts::new(9.0),
            bips: 1.0,
            utilization: Ratio::new(0.7),
            epi: None,
            peak_temperature: temp,
        }
    }

    /// Inner policy double that always tries to give everything to
    /// island 0 and its neighbour.
    struct Greedy;
    impl ProvisioningPolicy for Greedy {
        fn name(&self) -> &'static str {
            "greedy"
        }
        fn provision(&mut self, budget: Watts, f: &[IslandFeedback]) -> Vec<Watts> {
            let mut v = vec![Watts::new(budget.value() * 0.05); f.len()];
            v[0] = budget * 0.40;
            v[1] = budget * 0.30;
            v
        }
    }

    fn feedback8() -> Vec<IslandFeedback> {
        (0..8).map(|i| fb(i, 60.0 + i as f64)).collect()
    }

    #[test]
    fn enforcement_prevents_all_violations() {
        let mut p = ThermalAware::new(
            Box::new(Greedy),
            ThermalConstraints::paper_eight_island(),
            8,
        );
        let budget = Watts::new(80.0);
        for _ in 0..50 {
            p.provision(budget, &feedback8());
        }
        assert_eq!(
            p.stats().violated_intervals,
            0,
            "thermal-aware policy must never complete a violation streak"
        );
    }

    #[test]
    fn single_island_cap_is_enforced_before_streak_completes() {
        let mut p = ThermalAware::new(
            Box::new(Greedy),
            ThermalConstraints::paper_eight_island(),
            8,
        );
        let budget = Watts::new(100.0);
        let cap = budget.value() * p.tracker.constraints().single_cap;
        let mut above_cap_streak = 0usize;
        for _ in 0..20 {
            let a = p.provision(budget, &feedback8());
            if a[0].value() > cap + 1e-9 {
                above_cap_streak += 1;
                assert!(above_cap_streak < 4, "4 consecutive capped intervals");
            } else {
                above_cap_streak = 0;
            }
        }
    }

    #[test]
    fn observe_only_tracker_counts_greedy_violations() {
        // Fig. 18(c): run the *performance* policy and count how often it
        // violates the thermal constraints.
        let mut tracker = ConstraintTracker::new(ThermalConstraints::paper_eight_island(), 8);
        let mut greedy = Greedy;
        let budget = Watts::new(100.0);
        for _ in 0..20 {
            let a = greedy.provision(budget, &feedback8());
            tracker.observe(budget, &a);
        }
        assert!(
            tracker.stats().violation_fraction() > 0.5,
            "greedy allocation must violate: {}",
            tracker.stats().violation_fraction()
        );
    }

    #[test]
    fn redistribution_prefers_cool_islands() {
        let mut p = ThermalAware::new(
            Box::new(Greedy),
            ThermalConstraints::paper_eight_island(),
            8,
        );
        let budget = Watts::new(100.0);
        // Island 7 is hottest, island 2 coolest among receivers.
        let mut f = feedback8();
        f[2].peak_temperature = 40.0;
        f[7].peak_temperature = 95.0;
        let mut last = Vec::new();
        for _ in 0..5 {
            last = p.provision(budget, &f);
        }
        assert!(
            last[2] >= last[7],
            "coolest island should receive at least as much as hottest: {last:?}"
        );
    }

    #[test]
    fn wrapping_performance_policy_keeps_totals_bounded() {
        let mut p = ThermalAware::new(
            Box::new(PerformanceAware::new()),
            ThermalConstraints::paper_eight_island(),
            8,
        );
        let budget = Watts::new(80.0);
        for _ in 0..10 {
            let a = p.provision(budget, &feedback8());
            let total: f64 = a.iter().map(|w| w.value()).sum();
            assert!(total <= budget.value() + 1e-6);
        }
    }

    #[test]
    fn streak_resets_when_allocation_drops() {
        let mut t = ConstraintTracker::new(ThermalConstraints::paper_eight_island(), 8);
        let budget = Watts::new(100.0);
        let hot = {
            let mut v = vec![Watts::new(5.0); 8];
            v[0] = Watts::new(14.0); // above the 13 % single cap, pair stays ≤ 22 %
            v
        };
        let cool = vec![Watts::new(10.0); 8];
        // 3 hot intervals (below the 4-streak), then cool, then 3 more:
        // never a completed violation.
        for _ in 0..3 {
            assert!(!t.observe(budget, &hot));
        }
        t.observe(budget, &cool);
        for _ in 0..3 {
            t.observe(budget, &hot);
        }
        assert_eq!(t.stats().violated_intervals, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pair_indices_validated() {
        let c = ThermalConstraints {
            adjacent_pairs: vec![(IslandId(0), IslandId(9))],
            ..ThermalConstraints::paper_eight_island()
        };
        ConstraintTracker::new(c, 8);
    }
}
