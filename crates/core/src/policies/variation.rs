//! The variation-aware provisioning policy (§IV-B).
//!
//! Under intra-die process variation, islands leak differently; running
//! leaky islands at high V/F wastes power. The paper adapts the greedy
//! hill-climbing search of Magklis et al. (as extended by Herbert et al.):
//! each island independently explores its power allocation to minimize
//! **energy per (non-spin) instruction**:
//!
//! * if EPI improved since the last interval, keep moving the allocation in
//!   the same direction;
//! * if EPI degraded, the optimum was overshot: reverse direction, *hold*
//!   at the suspected optimum for a fixed number of intervals (the paper
//!   holds for 10 PIC intervals), then resume exploring.
//!
//! The net effect is that leakier islands settle at lower allocations
//! (their EPI curve bottoms out earlier) — "we essentially attempt to
//! operate the more leaky islands at lower V/F levels and less leaky
//! islands at higher V/F levels".

use crate::gpm::{IslandFeedback, ProvisioningPolicy};
use cpm_obs::{EventPayload, Recorder};
use cpm_units::Watts;

/// Per-island explorer state.
#[derive(Debug, Clone)]
struct Explorer {
    /// Current allocation as a fraction of the equal share.
    level: f64,
    /// Exploration direction: +1 (more power) or −1 (less).
    direction: f64,
    /// Remaining hold intervals after a reversal.
    hold: usize,
    /// EPI observed for the previous interval, joules/instruction.
    last_epi: Option<f64>,
}

impl Explorer {
    fn new() -> Self {
        Self {
            level: 1.0,
            direction: -1.0, // first move: try saving power
            hold: 0,
            last_epi: None,
        }
    }
}

/// The §IV-B greedy EPI-minimizing policy.
#[derive(Debug, Clone)]
pub struct VariationAware {
    explorers: Vec<Explorer>,
    /// Exploration step as a fraction of the equal share.
    step: f64,
    /// Hold length after a reversal, in GPM intervals.
    hold_intervals: usize,
    /// Allocation-level bounds as fractions of the equal share.
    level_range: (f64, f64),
    recorder: Recorder,
}

impl VariationAware {
    /// The paper's setting: hold for 10 PIC intervals = 1 GPM interval at
    /// default timing; we express the hold directly in GPM invocations.
    /// The step is small enough that the EPI signal (noisy interval to
    /// interval) dominates exploration noise.
    pub fn new() -> Self {
        Self::with_parameters(0.05, 2, (0.7, 1.3))
    }

    /// Fully parameterized constructor.
    ///
    /// * `step` — exploration step (fraction of the equal share),
    /// * `hold_intervals` — GPM invocations to hold after a reversal,
    /// * `level_range` — clamp on the allocation level.
    pub fn with_parameters(step: f64, hold_intervals: usize, level_range: (f64, f64)) -> Self {
        assert!(step > 0.0 && step < 1.0);
        assert!(level_range.0 > 0.0 && level_range.1 > level_range.0);
        Self {
            explorers: Vec::new(),
            step,
            hold_intervals,
            level_range,
            recorder: Recorder::disabled(),
        }
    }

    /// Current allocation levels (fractions of equal share), island order.
    pub fn levels(&self) -> Vec<f64> {
        self.explorers.iter().map(|e| e.level).collect()
    }
}

impl Default for VariationAware {
    fn default() -> Self {
        Self::new()
    }
}

impl ProvisioningPolicy for VariationAware {
    fn name(&self) -> &'static str {
        "variation-aware"
    }

    /// Attaching a recorder makes every search-direction reversal emit a
    /// [`EventPayload::PolicyHoldReversal`].
    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn provision(&mut self, budget: Watts, feedback: &[IslandFeedback]) -> Vec<Watts> {
        let n = feedback.len();
        if self.explorers.len() != n {
            self.explorers = vec![Explorer::new(); n];
        }
        let equal_share = budget.value() / n as f64;
        for (i, (e, fb)) in self.explorers.iter_mut().zip(feedback).enumerate() {
            let epi = fb.epi.map(|j| j.value());
            if e.hold > 0 {
                e.hold -= 1;
            } else if let (Some(now), Some(prev)) = (epi, e.last_epi) {
                if now <= prev {
                    // Improved (or flat): keep going.
                    e.level += e.direction * self.step;
                } else {
                    // Overshot the optimum: back up and hold there.
                    e.direction = -e.direction;
                    e.level += e.direction * self.step;
                    e.hold = self.hold_intervals;
                    self.recorder.record(EventPayload::PolicyHoldReversal {
                        island: i as u32,
                        level: e.level.clamp(self.level_range.0, self.level_range.1),
                        epi_now: now,
                        epi_prev: prev,
                        hold_intervals: self.hold_intervals as u32,
                    });
                }
                e.level = e.level.clamp(self.level_range.0, self.level_range.1);
            } else if epi.is_some() {
                // First EPI observation: take the initial step.
                e.level = (e.level + e.direction * self.step)
                    .clamp(self.level_range.0, self.level_range.1);
            }
            if epi.is_some() {
                e.last_epi = epi;
            }
        }
        self.explorers
            .iter()
            .map(|e| Watts::new(equal_share * e.level))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_units::{IslandId, Joules, Ratio};

    fn fb(i: usize, epi_nj: Option<f64>) -> IslandFeedback {
        IslandFeedback {
            island: IslandId(i),
            allocated: Watts::new(20.0),
            actual_power: Watts::new(18.0),
            bips: 2.0,
            utilization: Ratio::new(0.7),
            epi: epi_nj.map(|n| Joules::new(n * 1e-9)),
            peak_temperature: 60.0,
        }
    }

    #[test]
    fn no_epi_keeps_equal_split() {
        let mut p = VariationAware::new();
        let a = p.provision(Watts::new(80.0), &[fb(0, None), fb(1, None)]);
        assert!((a[0].value() - 40.0).abs() < 1e-9);
        assert!((a[1].value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn improving_epi_continues_downward() {
        let mut p = VariationAware::with_parameters(0.1, 1, (0.5, 1.5));
        let b = Watts::new(80.0);
        // EPI keeps improving as power falls → level keeps dropping.
        p.provision(b, &[fb(0, Some(30.0)), fb(1, Some(30.0))]);
        p.provision(b, &[fb(0, Some(28.0)), fb(1, Some(28.0))]);
        let a = p.provision(b, &[fb(0, Some(26.0)), fb(1, Some(26.0))]);
        assert!(
            a[0].value() < 40.0 * 0.85,
            "level should have fallen: {a:?}"
        );
    }

    #[test]
    fn degrading_epi_reverses_and_holds() {
        let mut p = VariationAware::with_parameters(0.1, 3, (0.5, 1.5));
        let b = Watts::new(80.0);
        p.provision(b, &[fb(0, Some(30.0))]); // first obs, step down → 0.9
        p.provision(b, &[fb(0, Some(25.0))]); // improved, down → 0.8
        let after_reverse = p.provision(b, &[fb(0, Some(40.0))]); // worse → up → 0.9, hold 3
        assert!((after_reverse[0].value() - 80.0 * 0.9).abs() < 1e-9);
        // During the hold the level must not move even with changing EPI.
        for _ in 0..3 {
            let a = p.provision(b, &[fb(0, Some(35.0))]);
            assert!((a[0].value() - 80.0 * 0.9).abs() < 1e-9, "hold violated");
        }
        // After the hold, exploration resumes.
        let resumed = p.provision(b, &[fb(0, Some(20.0))]);
        assert!((resumed[0].value() - 80.0 * 0.9).abs() > 1e-9);
    }

    #[test]
    fn levels_stay_clamped() {
        let mut p = VariationAware::with_parameters(0.2, 0, (0.5, 1.5));
        let b = Watts::new(80.0);
        // Monotonically improving EPI forever → slams into the lower clamp.
        let mut epi = 100.0;
        for _ in 0..30 {
            p.provision(b, &[fb(0, Some(epi))]);
            epi *= 0.95;
        }
        let levels = p.levels();
        assert!((levels[0] - 0.5).abs() < 1e-9, "clamped at 0.5: {levels:?}");
    }

    #[test]
    fn islands_explore_independently() {
        let mut p = VariationAware::with_parameters(0.1, 0, (0.5, 1.5));
        let b = Watts::new(80.0);
        // Island 0's EPI improves with less power; island 1's degrades
        // immediately (its optimum is at high power).
        p.provision(b, &[fb(0, Some(30.0)), fb(1, Some(30.0))]);
        p.provision(b, &[fb(0, Some(25.0)), fb(1, Some(45.0))]);
        let levels = p.levels();
        assert!(levels[0] < 1.0, "island 0 descending: {levels:?}");
        assert!(levels[1] >= 1.0, "island 1 reversed upward: {levels:?}");
    }

    #[test]
    fn total_never_exceeds_budget_times_max_level() {
        let mut p = VariationAware::new();
        let b = Watts::new(80.0);
        for k in 0..20 {
            let a = p.provision(
                b,
                &[fb(0, Some(30.0 - k as f64)), fb(1, Some(30.0 + k as f64))],
            );
            let total: f64 = a.iter().map(|w| w.value()).sum();
            // The GPM's normalize pass enforces the hard budget; the raw
            // policy keeps totals within the level clamp.
            assert!(total <= b.value() * 1.5 + 1e-9);
        }
    }
}
