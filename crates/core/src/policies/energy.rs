//! Energy-aware provisioning with a minimum performance guarantee.
//!
//! §II-C lists this among the policies the decoupled architecture makes
//! feasible but does not evaluate: "power provisioning for reducing energy
//! consumption by providing a minimum guarantee on the performance". This
//! module implements it: every island must retain at least
//! `guarantee` (e.g. 90 %) of its *reference throughput* — the BIPS it
//! achieves unthrottled — and subject to that constraint the policy shaves
//! every watt it can.
//!
//! Mechanism per GPM interval and island:
//!
//! * maintain a decayed peak of observed BIPS as the reference,
//! * if current BIPS is above the guaranteed floor with margin, step the
//!   allocation down (save energy);
//! * if it has fallen to (or under) the floor, step the allocation back up
//!   (restore the guarantee);
//! * step sizes are asymmetric — restoring is faster than saving — so
//!   guarantee violations are short-lived.

use crate::gpm::{IslandFeedback, ProvisioningPolicy};
use cpm_units::Watts;

/// Decay of the reference-BIPS peak per GPM interval. Very slow: the
/// reference must survive long throttled stretches (during which observed
/// BIPS says nothing about the unthrottled capability) while still
/// tracking a genuine long-term demand drop. At 5 ms GPM intervals this
/// half-life is ≈ 35 s of simulated time.
const REFERENCE_DECAY: f64 = 0.99999;
/// Downward (energy-saving) step, fraction of current allocation.
const SAVE_STEP: f64 = 0.03;
/// Upward (guarantee-restoring) step, fraction of current allocation.
const RESTORE_STEP: f64 = 0.12;
/// Hysteresis band above the floor within which the allocation holds.
const HOLD_BAND: f64 = 0.02;

/// Per-island controller state.
#[derive(Debug, Clone, Default)]
struct IslandState {
    /// Decayed peak of observed BIPS — the unthrottled reference.
    reference_bips: f64,
    /// Current allocation (watts); 0 until the first feedback arrives.
    alloc: f64,
}

/// The minimum-performance-guarantee energy saver.
#[derive(Debug, Clone)]
pub struct EnergyAware {
    /// Fraction of reference throughput each island is guaranteed.
    guarantee: f64,
    state: Vec<IslandState>,
}

impl EnergyAware {
    /// Creates the policy with a performance guarantee in `(0, 1)`
    /// (e.g. `0.9` = every island keeps ≥ 90 % of its unthrottled BIPS).
    pub fn new(guarantee: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&guarantee),
            "guarantee must be a fraction in (0, 1)"
        );
        Self {
            guarantee,
            state: Vec::new(),
        }
    }

    /// The configured guarantee fraction.
    pub fn guarantee(&self) -> f64 {
        self.guarantee
    }

    /// Current per-island reference BIPS (for inspection/tests).
    pub fn references(&self) -> Vec<f64> {
        self.state.iter().map(|s| s.reference_bips).collect()
    }
}

impl ProvisioningPolicy for EnergyAware {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn provision(&mut self, budget: Watts, feedback: &[IslandFeedback]) -> Vec<Watts> {
        let n = feedback.len();
        if self.state.len() != n {
            self.state = vec![IslandState::default(); n];
        }
        feedback
            .iter()
            .zip(self.state.iter_mut())
            .map(|(fb, st)| {
                st.reference_bips = (st.reference_bips * REFERENCE_DECAY).max(fb.bips);
                if st.alloc <= 0.0 {
                    // Bootstrap from what the island actually drew.
                    st.alloc = fb.actual_power.value().max(1e-3);
                }
                let floor = st.reference_bips * self.guarantee;
                if fb.bips < floor {
                    st.alloc *= 1.0 + RESTORE_STEP;
                } else if fb.bips > floor * (1.0 + HOLD_BAND) {
                    st.alloc *= 1.0 - SAVE_STEP;
                }
                // Never ask for more than the whole budget for one island.
                st.alloc = st.alloc.min(budget.value());
                Watts::new(st.alloc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_units::{IslandId, Ratio};

    fn fb(i: usize, power: f64, bips: f64) -> IslandFeedback {
        IslandFeedback {
            island: IslandId(i),
            allocated: Watts::new(power),
            actual_power: Watts::new(power),
            bips,
            utilization: Ratio::new(0.7),
            epi: None,
            peak_temperature: 60.0,
        }
    }

    /// A toy island: BIPS responds as (P/P_full)^0.45 · B_full.
    fn island_bips(p: f64, p_full: f64, b_full: f64) -> f64 {
        b_full * (p / p_full).powf(0.45)
    }

    #[test]
    fn saves_power_until_the_guarantee_binds() {
        let mut policy = EnergyAware::new(0.90);
        let budget = Watts::new(40.0);
        let (p_full, b_full) = (20.0, 2.0);
        let mut p = p_full;
        let mut min_bips: f64 = f64::INFINITY;
        let mut final_bips = 0.0;
        for _ in 0..200 {
            let b = island_bips(p, p_full, b_full);
            min_bips = min_bips.min(b);
            final_bips = b;
            let alloc = policy.provision(budget, &[fb(0, p, b)]);
            p = alloc[0].value().min(p_full); // the island can't use more
        }
        // Power was saved…
        assert!(p < 0.95 * p_full, "allocation should have dropped: {p}");
        // …but the guarantee held (steady state within a small band under
        // the 90 % floor; transients may dip slightly below).
        assert!(
            final_bips >= 0.88 * b_full,
            "steady BIPS {final_bips} under the guarantee"
        );
        assert!(
            min_bips >= 0.85 * b_full,
            "transient dip too deep: {min_bips}"
        );
    }

    #[test]
    fn restores_quickly_after_a_violation() {
        let mut policy = EnergyAware::new(0.90);
        let budget = Watts::new(40.0);
        // Prime the reference at full throughput.
        policy.provision(budget, &[fb(0, 20.0, 2.0)]);
        // Simulate a deep throttle: BIPS collapses to 60 % of reference.
        let mut p = 8.0;
        let mut rounds = 0;
        loop {
            let b = island_bips(p, 20.0, 2.0);
            if b >= 0.9 * 2.0 || rounds > 50 {
                break;
            }
            let alloc = policy.provision(budget, &[fb(0, p, b)]);
            p = alloc[0].value().min(20.0);
            rounds += 1;
        }
        assert!(rounds <= 12, "guarantee restored in {rounds} rounds");
    }

    #[test]
    fn reference_survives_throttled_stretches() {
        let mut policy = EnergyAware::new(0.90);
        let budget = Watts::new(40.0);
        policy.provision(budget, &[fb(0, 20.0, 2.0)]);
        for _ in 0..100 {
            policy.provision(budget, &[fb(0, 10.0, 1.4)]);
        }
        let reference = policy.references()[0];
        assert!(
            reference > 1.8,
            "reference {reference} must not collapse to the throttled level"
        );
    }

    #[test]
    fn independent_islands() {
        let mut policy = EnergyAware::new(0.90);
        let budget = Watts::new(60.0);
        // Island 0 over-performs (can save); island 1 sits below its floor.
        policy.provision(budget, &[fb(0, 20.0, 2.0), fb(1, 20.0, 2.0)]);
        let a = policy.provision(budget, &[fb(0, 20.0, 2.0), fb(1, 20.0, 1.2)]);
        assert!(a[0].value() < 20.0, "saver shrinks: {a:?}");
        assert!(a[1].value() > 20.0, "violator grows: {a:?}");
    }

    #[test]
    #[should_panic(expected = "fraction in (0, 1)")]
    fn guarantee_must_be_fractional() {
        EnergyAware::new(1.5);
    }
}
