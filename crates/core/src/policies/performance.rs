//! The performance-aware provisioning policy (paper §II-C, Eqs. 1–6).
//!
//! Goal: maximize total instruction throughput subject to the chip budget.
//! Each GPM interval the policy:
//!
//! 1. estimates the performance each island *should* have achieved given
//!    its last allocation change, from the cubic dynamic-power/frequency
//!    relation (Eqs. 1–4):
//!    `BIPSᵉᵢ(t) = BIPSᵃᵢ(t−1) · (Pᵢ(t−1)/Pᵢ(t−2))^{1/3}`,
//! 2. computes the achievement ratio `φᵢ(t) = BIPSᵃᵢ(t)/BIPSᵉᵢ(t)`
//!    (Eq. 5),
//! 3. provisions the next interval in proportion to the product of φ and
//!    the island's measured **frequency sensitivity**
//!    `sᵢ ≈ Δlog BIPS / Δlog P` (an online EWMA regression):
//!    `Pᵢ(t+1) ∝ φᵢ·(ε + sᵢ)`.
//!
//! The sensitivity term realizes the paper's stated mechanism — the GPM
//! scales each island "in the proportion of expected performance variation
//! for the scaling in frequency over the next interval", and "if the BIPS
//! metric for an application was low with a high power budget … the GPM
//! will … allocate the extra budget from this application to some other
//! application". The bare Eq. 6 ratio φ alone cannot do that: every
//! constant allocation is a fixed point of `Pᵢ ∝ φᵢ` (φ → 1 as soon as
//! allocations stop moving), so power would never migrate from
//! memory-bound islands (whose BIPS barely responds to frequency) to
//! CPU-bound ones. The measured `d log BIPS / d log P` slope is exactly
//! the "expected performance variation for the scaling" and separates the
//! two classes cleanly (≈ 0.4 for CPU-bound, ≈ 0 for memory-bound on
//! this substrate).
//!
//! Two details keep the estimator honest. The regression runs on the
//! *allocated* budgets — the excitation the GPM itself induced — never on
//! measured power, whose phase-driven co-movement with BIPS masquerades
//! as frequency-sensitivity on unthrottled islands. And until an island
//! has seen real excitation, its sensitivity prior is its measured busy
//! fraction: a core stalled on memory X % of the time can gain at most
//! (1−X) from a faster clock, so utilization separates the classes before
//! the regression has any data (and supplies the initial allocation skew
//! that *creates* the excitation).

use crate::gpm::{IslandFeedback, ProvisioningPolicy};
use cpm_units::Watts;

/// EWMA decay for the sensitivity regression.
const SENS_DECAY: f64 = 0.90;
/// Minimum |Δlog P| worth learning from (smaller deltas are noise).
const SENS_MIN_DELTA: f64 = 0.01;
/// Floor added to the sensitivity weight so no island is starved outright.
const WEIGHT_FLOOR: f64 = 0.05;
/// Headroom over the observed demand peak allowed in an allocation.
const DEMAND_HEADROOM: f64 = 1.15;
/// Tighter margin used when reclaiming from sated islands to feed hungry
/// ones; the 2 % slack left on the donor outruns the demand tracker's
/// 1 %-per-interval decay, so donors can still grow back.
const DEMAND_TRIM: f64 = 1.02;
/// Decay of the demand-peak tracker per GPM interval.
const DEMAND_DECAY: f64 = 0.99;

/// State carried between GPM invocations.
#[derive(Debug, Clone)]
struct IslandHistory {
    /// BIPSᵃ(t−1).
    prev_bips: f64,
    /// P(t−1): the allocation that produced the previous feedback.
    prev_alloc: f64,
    /// P(t−2).
    prev_prev_alloc: f64,
    /// EWMA accumulators for the through-origin regression of
    /// Δlog BIPS on Δlog P.
    sens_num: f64,
    sens_den: f64,
    /// Decayed peak of observed island power — the island's demonstrated
    /// *demand*. Allocating far above this is pure waste: the island pins
    /// its top operating point and the excess budget helps nobody ("the
    /// GPM would realize this fact and provision less power budget",
    /// §II-C).
    demand_peak: f64,
}

impl Default for IslandHistory {
    fn default() -> Self {
        Self {
            prev_bips: 0.0,
            prev_alloc: 0.0,
            prev_prev_alloc: 0.0,
            sens_num: 0.0,
            sens_den: 0.0,
            demand_peak: 0.0,
        }
    }
}

impl IslandHistory {
    /// Current sensitivity estimate `s = Δlog BIPS / Δlog P`, clamped to
    /// the physically meaningful band; `prior` until enough excitation has
    /// been seen. Callers pass the island's measured busy fraction as the
    /// prior — a core stalled on memory X % of the time can gain at most
    /// (1−X) from a frequency increase, so utilization is a first-order
    /// estimate of the elasticity that needs no excitation at all.
    fn sensitivity_or(&self, prior: f64) -> f64 {
        if self.sens_den < 1e-6 {
            prior
        } else {
            (self.sens_num / self.sens_den).clamp(0.0, 1.5)
        }
    }

    fn update_demand(&mut self, actual_power: f64) {
        self.demand_peak = (self.demand_peak * DEMAND_DECAY).max(actual_power);
    }

    fn learn(&mut self, bips_now: f64, alloc_now: f64) {
        if self.prev_bips > 1e-12 && self.prev_alloc > 1e-9 && bips_now > 1e-12 {
            // GPM-interval cadence (cold): the sanctioned libm gateway,
            // not the deterministic hot-path kernels.
            let dp = cpm_math::reference::ln(alloc_now / self.prev_alloc);
            if dp.abs() >= SENS_MIN_DELTA {
                let db = cpm_math::reference::ln(bips_now / self.prev_bips);
                self.sens_num = SENS_DECAY * self.sens_num + dp * db;
                self.sens_den = SENS_DECAY * self.sens_den + dp * dp;
            }
        }
    }
}

/// The Eq. 6 proportional-φ provisioning policy with frequency-sensitivity
/// weighting.
#[derive(Debug, Clone, Default)]
pub struct PerformanceAware {
    history: Vec<IslandHistory>,
}

impl PerformanceAware {
    /// Creates the policy (history fills in over the first two
    /// invocations, during which the split stays equal).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current per-island sensitivity estimates (for inspection/tests).
    pub fn sensitivities(&self) -> Vec<f64> {
        self.history.iter().map(|h| h.sensitivity_or(0.4)).collect()
    }

    /// Guard against degenerate ratios when power barely changed or
    /// feedback is incomplete.
    fn phi(history: &IslandHistory, fb: &IslandFeedback) -> f64 {
        let expected = if history.prev_bips > 0.0
            && history.prev_alloc > 1e-9
            && history.prev_prev_alloc > 1e-9
        {
            history.prev_bips * (history.prev_alloc / history.prev_prev_alloc).cbrt()
        } else {
            // No usable history: expectation = what it actually did, φ = 1.
            fb.bips
        };
        if expected <= 1e-12 {
            1.0
        } else {
            // Clamp to keep one pathological interval from starving or
            // flooding an island.
            (fb.bips / expected).clamp(0.25, 4.0)
        }
    }
}

impl ProvisioningPolicy for PerformanceAware {
    fn name(&self) -> &'static str {
        "performance-aware"
    }

    fn provision(&mut self, budget: Watts, feedback: &[IslandFeedback]) -> Vec<Watts> {
        let n = feedback.len();
        if self.history.len() != n {
            self.history = vec![IslandHistory::default(); n];
        }
        // Learn sensitivities from the interval that just ended, regressing
        // on the *allocated* budgets — the excitation the GPM itself
        // induced. Regressing on measured power instead would confound the
        // estimate: an unthrottled memory-bound island's power and BIPS
        // co-move through workload phases (both scale with activity), which
        // reads as high frequency-sensitivity when the true elasticity is
        // near zero.
        for (h, fb) in self.history.iter_mut().zip(feedback) {
            h.learn(fb.bips, fb.allocated.value().max(1e-9));
            h.update_demand(fb.actual_power.value());
        }
        let weights: Vec<f64> = feedback
            .iter()
            .zip(&self.history)
            .map(|(fb, h)| {
                let prior = fb.utilization.value().clamp(0.0, 1.0);
                Self::phi(h, fb).sqrt() * (WEIGHT_FLOOR + h.sensitivity_or(prior))
            })
            .collect();
        let sum: f64 = weights.iter().sum();
        let mut alloc: Vec<Watts> = if sum <= 1e-12 {
            vec![budget / n as f64; n]
        } else {
            weights.iter().map(|&w| budget * (w / sum)).collect()
        };
        // Demand-aware rebalancing: reclaim allocation beyond demand·TRIM
        // from sated islands to feed islands still below their demonstrated
        // demand. Without this, a weight-rich island hoards budget it
        // cannot convert into anything (it already runs at full speed)
        // while a weight-poor island sits throttled below demand even when
        // the budget covers everyone — management would cost throughput at
        // a 100 % budget. Both transfers are sum-preserving.
        for _ in 0..4 {
            let mut need = vec![0.0f64; n];
            let mut surplus = vec![0.0f64; n];
            for (i, (a, h)) in alloc.iter().zip(&self.history).enumerate() {
                if h.demand_peak <= 0.0 {
                    continue;
                }
                need[i] = (h.demand_peak - a.value()).max(0.0);
                surplus[i] = (a.value() - h.demand_peak * DEMAND_TRIM).max(0.0);
            }
            let total_need: f64 = need.iter().sum();
            let total_surplus: f64 = surplus.iter().sum();
            let take = total_need.min(total_surplus);
            if take <= 1e-9 {
                break;
            }
            for (i, a) in alloc.iter_mut().enumerate() {
                *a += Watts::new(take * (need[i] / total_need - surplus[i] / total_surplus));
            }
        }
        // Demand ceilings: cap every island at a small headroom over its
        // demonstrated peak power and hand the freed budget to islands
        // still below their caps (weight-proportionally). A few passes
        // converge; any un-placeable remainder stays unspent (safe).
        for _ in 0..3 {
            let mut freed = 0.0;
            let mut open = Vec::new();
            for (i, (a, h)) in alloc.iter_mut().zip(&self.history).enumerate() {
                if h.demand_peak <= 0.0 {
                    open.push(i);
                    continue;
                }
                let cap = h.demand_peak * DEMAND_HEADROOM;
                if a.value() > cap {
                    freed += a.value() - cap;
                    *a = Watts::new(cap);
                } else {
                    open.push(i);
                }
            }
            if freed <= 1e-9 || open.is_empty() {
                break;
            }
            let open_weight: f64 = open.iter().map(|&i| weights[i]).sum();
            if open_weight <= 1e-12 {
                break;
            }
            for &i in &open {
                alloc[i] += Watts::new(freed * weights[i] / open_weight);
            }
        }
        // Roll history forward; record the *allocated* budget as the basis
        // for both the cube-root expectation (Eq. 5 is stated in power
        // budgets) and the next learning step.
        for (h, fb) in self.history.iter_mut().zip(feedback) {
            h.prev_prev_alloc = h.prev_alloc;
            h.prev_alloc = fb.allocated.value().max(1e-9);
            h.prev_bips = fb.bips;
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_units::{IslandId, Ratio};

    fn fb(i: usize, allocated: f64, actual: f64, bips: f64) -> IslandFeedback {
        IslandFeedback {
            island: IslandId(i),
            allocated: Watts::new(allocated),
            actual_power: Watts::new(actual),
            bips,
            utilization: Ratio::new(0.7),
            epi: None,
            peak_temperature: 60.0,
        }
    }

    #[test]
    fn first_invocation_splits_equally() {
        let mut p = PerformanceAware::new();
        let a = p.provision(
            Watts::new(80.0),
            &[
                fb(0, 20.0, 19.0, 2.0),
                fb(1, 20.0, 19.0, 1.0),
                fb(2, 20.0, 19.0, 3.0),
                fb(3, 20.0, 19.0, 0.5),
            ],
        );
        // No history yet → φ = 1 and uniform sensitivity prior → equal.
        for w in &a {
            assert!((w.value() - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_equals_budget() {
        let mut p = PerformanceAware::new();
        let feedback = [
            fb(0, 25.0, 24.0, 2.5),
            fb(1, 15.0, 14.0, 0.8),
            fb(2, 20.0, 19.0, 2.0),
            fb(3, 20.0, 19.0, 1.2),
        ];
        for _ in 0..5 {
            let a = p.provision(Watts::new(80.0), &feedback);
            let total: f64 = a.iter().map(|w| w.value()).sum();
            assert!((total - 80.0).abs() < 1e-9, "Eq. 6 invariant: Σ = budget");
        }
    }

    #[test]
    fn frequency_sensitive_island_wins_the_budget() {
        // Island 0 is CPU-bound: busy 90 % of the time, BIPS tracks its
        // budget as P^0.45, and it can absorb up to 30 W. Island 1 is
        // memory-bound: busy 35 %, BIPS flat in its budget, and it never
        // draws more than 12 W no matter what it is allocated. The
        // utilization prior skews the very first data-driven split, the
        // skew is the excitation the regression learns the real
        // elasticities from, and the demand tracker reclaims what the
        // memory-bound island provably cannot use.
        let mut p = PerformanceAware::new();
        let budget = Watts::new(40.0);
        let mut a0 = 20.0f64;
        let mut a1 = 20.0f64;
        let mut last = Vec::new();
        for _ in 0..30 {
            let p0 = a0.min(30.0);
            let p1 = a1.min(12.0);
            let b0 = 2.0 * (p0 / 20.0).powf(0.45);
            let b1 = 1.5; // flat
            let mut f0 = fb(0, a0, p0, b0);
            f0.utilization = Ratio::new(0.9);
            let mut f1 = fb(1, a1, p1, b1);
            f1.utilization = Ratio::new(0.35);
            last = p.provision(budget, &[f0, f1]);
            a0 = last[0].value();
            a1 = last[1].value();
        }
        assert!(
            last[0].value() > 1.3 * last[1].value(),
            "CPU-bound island should dominate: {last:?} (sens {:?})",
            p.sensitivities()
        );
    }

    #[test]
    fn sensitivity_estimates_separate_classes() {
        let mut p = PerformanceAware::new();
        let budget = Watts::new(40.0);
        let mut p0 = 20.0;
        let mut p1 = 20.0;
        for k in 0..20 {
            // Externally perturb powers so both islands see excitation.
            let wiggle = if k % 2 == 0 { 1.1 } else { 0.9 };
            p0 *= wiggle;
            p1 *= wiggle;
            let b0 = 2.0 * (p0 / 20.0f64).powf(0.45);
            let b1 = 1.5 * (p1 / 20.0f64).powf(0.05);
            p.provision(budget, &[fb(0, p0, p0, b0), fb(1, p1, p1, b1)]);
        }
        let s = p.sensitivities();
        assert!((s[0] - 0.45).abs() < 0.1, "cpu-bound sensitivity {s:?}");
        assert!(s[1] < 0.15, "memory-bound sensitivity {s:?}");
    }

    #[test]
    fn phi_clamping_bounds_reallocation() {
        let mut p = PerformanceAware::new();
        let budget = Watts::new(40.0);
        p.provision(budget, &[fb(0, 20.0, 20.0, 2.0), fb(1, 20.0, 20.0, 2.0)]);
        p.provision(budget, &[fb(0, 30.0, 30.0, 2.0), fb(1, 10.0, 10.0, 2.0)]);
        // Island 1's BIPS crashes to ~0: φ clamps at 0.25 and the weight
        // floor keeps it from being starved outright.
        let a = p.provision(budget, &[fb(0, 30.0, 30.0, 100.0), fb(1, 10.0, 10.0, 1e-6)]);
        assert!(a[1].value() > 0.01 * budget.value(), "no starvation: {a:?}");
    }

    #[test]
    fn zero_bips_everywhere_degrades_to_equal_split() {
        let mut p = PerformanceAware::new();
        let budget = Watts::new(40.0);
        p.provision(budget, &[fb(0, 20.0, 20.0, 0.0), fb(1, 20.0, 20.0, 0.0)]);
        let a = p.provision(budget, &[fb(0, 20.0, 20.0, 0.0), fb(1, 20.0, 20.0, 0.0)]);
        assert!((a[0].value() - a[1].value()).abs() < 1e-9);
    }

    #[test]
    fn island_count_change_resets_history() {
        let mut p = PerformanceAware::new();
        p.provision(
            Watts::new(40.0),
            &[fb(0, 20.0, 20.0, 2.0), fb(1, 20.0, 20.0, 2.0)],
        );
        let a = p.provision(Watts::new(40.0), &[fb(0, 20.0, 20.0, 2.0)]);
        assert_eq!(a.len(), 1);
    }
}
