//! QoS-aware provisioning: strict priority tiers with weighted sharing.
//!
//! §II-C names "QoS provisioning" among the policies the decoupled
//! GPM/PIC architecture makes feasible; this module implements the
//! classic form. Every island carries a [`QosClass`]:
//!
//! * islands are served in **descending priority order** — a tier receives
//!   power only after every higher tier's demand is met,
//! * within a tier, power is split **proportionally to weight**, capped at
//!   each island's observed demand (decayed peak of actual power, plus
//!   headroom),
//! * leftover budget cascades down; whatever the lowest tier cannot use is
//!   stranded (the GPM never pads).
//!
//! The result: when the budget tightens, best-effort islands brown out
//! first and latency-critical islands keep their full allocation until the
//! budget can no longer cover even them.

use crate::gpm::{IslandFeedback, ProvisioningPolicy};
use cpm_units::Watts;

/// Per-island service class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosClass {
    /// Higher = served earlier. Islands of equal priority share a tier.
    pub priority: u8,
    /// Relative share within the tier (must be positive).
    pub weight: f64,
}

impl QosClass {
    /// A latency-critical class (highest priority, unit weight).
    pub const CRITICAL: Self = Self {
        priority: 2,
        weight: 1.0,
    };
    /// A standard class.
    pub const STANDARD: Self = Self {
        priority: 1,
        weight: 1.0,
    };
    /// A best-effort class (served last).
    pub const BEST_EFFORT: Self = Self {
        priority: 0,
        weight: 1.0,
    };
}

/// Decay of the per-island demand peak per GPM interval.
const DEMAND_DECAY: f64 = 0.99;
/// Headroom over the demand peak an island may be allocated.
const DEMAND_HEADROOM: f64 = 1.15;

/// The priority/weight QoS policy.
#[derive(Debug, Clone)]
pub struct QosAware {
    classes: Vec<QosClass>,
    demand_peak: Vec<f64>,
}

impl QosAware {
    /// Creates the policy with one class per island (island order).
    pub fn new(classes: Vec<QosClass>) -> Self {
        assert!(!classes.is_empty(), "need at least one island class");
        assert!(
            classes
                .iter()
                .all(|c| c.weight > 0.0 && c.weight.is_finite()),
            "weights must be positive and finite"
        );
        let n = classes.len();
        Self {
            classes,
            demand_peak: vec![0.0; n],
        }
    }

    /// The configured classes.
    pub fn classes(&self) -> &[QosClass] {
        &self.classes
    }
}

impl ProvisioningPolicy for QosAware {
    fn name(&self) -> &'static str {
        "qos-aware"
    }

    fn provision(&mut self, budget: Watts, feedback: &[IslandFeedback]) -> Vec<Watts> {
        assert_eq!(
            feedback.len(),
            self.classes.len(),
            "one QoS class per island required"
        );
        // Track demand.
        for (peak, fb) in self.demand_peak.iter_mut().zip(feedback) {
            *peak = (*peak * DEMAND_DECAY).max(fb.actual_power.value());
        }
        let caps: Vec<f64> = self
            .demand_peak
            .iter()
            .map(|&d| {
                if d > 0.0 {
                    d * DEMAND_HEADROOM
                } else {
                    f64::INFINITY
                }
            })
            .collect();

        let mut alloc = vec![0.0f64; feedback.len()];
        let mut remaining = budget.value();

        // Distinct priorities, highest first.
        let mut priorities: Vec<u8> = self.classes.iter().map(|c| c.priority).collect();
        priorities.sort_unstable_by(|a, b| b.cmp(a));
        priorities.dedup();

        for prio in priorities {
            if remaining <= 1e-12 {
                break;
            }
            let tier: Vec<usize> = (0..self.classes.len())
                .filter(|&i| self.classes[i].priority == prio)
                .collect();
            // Weighted water-filling within the tier, honoring demand caps:
            // repeat until no island in the tier hits its cap mid-round.
            let mut open: Vec<usize> = tier.clone();
            while !open.is_empty() && remaining > 1e-12 {
                let weight_sum: f64 = open.iter().map(|&i| self.classes[i].weight).sum();
                let mut capped = Vec::new();
                let mut spent = 0.0;
                for &i in &open {
                    let fair = remaining * self.classes[i].weight / weight_sum;
                    let room = caps[i] - alloc[i];
                    if fair >= room {
                        alloc[i] += room;
                        spent += room;
                        capped.push(i);
                    } else {
                        alloc[i] += fair;
                        spent += fair;
                    }
                }
                remaining -= spent;
                if capped.is_empty() {
                    break; // everyone took their fair share — tier done
                }
                open.retain(|i| !capped.contains(i));
            }
        }
        alloc.into_iter().map(Watts::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_units::{IslandId, Ratio};

    fn fb(i: usize, actual: f64) -> IslandFeedback {
        IslandFeedback {
            island: IslandId(i),
            allocated: Watts::new(actual),
            actual_power: Watts::new(actual),
            bips: 1.0,
            utilization: Ratio::new(0.7),
            epi: None,
            peak_temperature: 60.0,
        }
    }

    #[test]
    fn critical_tier_is_served_first_under_scarcity() {
        let mut p = QosAware::new(vec![QosClass::CRITICAL, QosClass::BEST_EFFORT]);
        // Both islands demonstrated ~20 W demand; only 24 W to give.
        p.provision(Watts::new(60.0), &[fb(0, 20.0), fb(1, 20.0)]);
        let a = p.provision(Watts::new(24.0), &[fb(0, 20.0), fb(1, 20.0)]);
        // Critical gets its full capped demand (23 W), best-effort scraps.
        assert!(a[0].value() > 20.0, "critical first: {a:?}");
        assert!(a[1].value() < 2.0, "best-effort browns out: {a:?}");
    }

    #[test]
    fn surplus_cascades_down_the_tiers() {
        let mut p = QosAware::new(vec![QosClass::CRITICAL, QosClass::BEST_EFFORT]);
        p.provision(Watts::new(60.0), &[fb(0, 10.0), fb(1, 20.0)]);
        let a = p.provision(Watts::new(40.0), &[fb(0, 10.0), fb(1, 20.0)]);
        // Critical caps at 11.5 W (demand × headroom); the rest flows down.
        assert!((a[0].value() - 11.5).abs() < 0.2, "{a:?}");
        assert!(a[1].value() > 20.0, "surplus reaches best-effort: {a:?}");
    }

    #[test]
    fn weights_split_within_a_tier() {
        let heavy = QosClass {
            priority: 1,
            weight: 3.0,
        };
        let light = QosClass {
            priority: 1,
            weight: 1.0,
        };
        let mut p = QosAware::new(vec![heavy, light]);
        // Huge demands so caps don't bind; 40 W splits 3:1.
        p.provision(Watts::new(60.0), &[fb(0, 100.0), fb(1, 100.0)]);
        let a = p.provision(Watts::new(40.0), &[fb(0, 100.0), fb(1, 100.0)]);
        assert!((a[0].value() - 30.0).abs() < 1e-6, "{a:?}");
        assert!((a[1].value() - 10.0).abs() < 1e-6, "{a:?}");
    }

    #[test]
    fn total_never_exceeds_budget() {
        let mut p = QosAware::new(vec![
            QosClass::CRITICAL,
            QosClass::STANDARD,
            QosClass::BEST_EFFORT,
        ]);
        for round in 0..10 {
            let budget = Watts::new(20.0 + 5.0 * round as f64);
            let a = p.provision(budget, &[fb(0, 15.0), fb(1, 12.0), fb(2, 18.0)]);
            let total: f64 = a.iter().map(|w| w.value()).sum();
            assert!(total <= budget.value() + 1e-9, "round {round}: {total}");
        }
    }

    #[test]
    fn demand_caps_strand_unusable_budget() {
        let mut p = QosAware::new(vec![QosClass::STANDARD, QosClass::STANDARD]);
        p.provision(Watts::new(60.0), &[fb(0, 5.0), fb(1, 5.0)]);
        let a = p.provision(Watts::new(60.0), &[fb(0, 5.0), fb(1, 5.0)]);
        let total: f64 = a.iter().map(|w| w.value()).sum();
        // Both cap at 5.75 W; ~48 W deliberately stranded.
        assert!(total < 12.0, "caps must bind: {total}");
    }

    #[test]
    #[should_panic(expected = "one QoS class per island")]
    fn class_count_must_match() {
        QosAware::new(vec![QosClass::STANDARD])
            .provision(Watts::new(10.0), &[fb(0, 5.0), fb(1, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_weight() {
        QosAware::new(vec![QosClass {
            priority: 0,
            weight: 0.0,
        }]);
    }
}
