//! The GPM provisioning policies evaluated by the paper.
//!
//! * [`performance`] — maximize chip BIPS within the budget (Eqs. 1–6),
//! * [`thermal`] — avoid hotspots via spatio-temporal allocation
//!   constraints (§IV-A),
//! * [`variation`] — minimize power/throughput under intra-die leakage
//!   variation via greedy exploration (§IV-B),
//! * [`energy`] — minimize energy under a per-island minimum performance
//!   guarantee (named feasible in §II-C, implemented here as an
//!   extension),
//! * [`qos`] — strict-priority / weighted-share QoS provisioning (also
//!   named feasible in §II-C).

pub mod energy;
pub mod performance;
pub mod qos;
pub mod thermal;
pub mod variation;
