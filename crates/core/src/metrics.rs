//! Controller-quality metrics: the paper's three robustness measures
//! (§II-A) computed from recorded traces.
//!
//! The paper quotes overshoot "within 4 % of the target" — i.e. relative to
//! the target *level*, not to the size of the reference step — and settling
//! as the number of PIC invocations until the response stays near the
//! target. Both conventions are implemented here.

use cpm_sim::TimeSeries;

/// Aggregate tracking quality of a power trace against its target(s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingSummary {
    /// Largest excursion above target, percent of the target level.
    pub max_overshoot_percent: f64,
    /// Largest excursion below target, percent of the target level.
    pub max_undershoot_percent: f64,
    /// Mean |error|, percent of the target level, over the *compared*
    /// samples only.
    pub mean_abs_error_percent: f64,
    /// Samples that entered the error statistics.
    pub compared_samples: usize,
    /// Samples excluded because their target was non-positive (a relative
    /// error against a zero target is undefined). A large count means the
    /// summary describes only a sliver of the run — check before trusting
    /// a "perfect" score.
    pub skipped_samples: usize,
}

impl TrackingSummary {
    /// Quality against a constant target (chip budget tracking, Fig. 10).
    pub fn against_constant(actual: &TimeSeries, target: f64) -> Self {
        assert!(target > 0.0, "target must be positive");
        assert!(!actual.is_empty(), "empty trace");
        let mut over: f64 = 0.0;
        let mut under: f64 = 0.0;
        let mut abs_sum = 0.0;
        for v in actual.values() {
            let e = (v - target) / target;
            over = over.max(e);
            under = under.max(-e);
            abs_sum += e.abs();
        }
        Self {
            max_overshoot_percent: over * 100.0,
            max_undershoot_percent: under * 100.0,
            mean_abs_error_percent: abs_sum / actual.len() as f64 * 100.0,
            compared_samples: actual.len(),
            skipped_samples: 0,
        }
    }

    /// Quality against a paired, time-varying target (island tracking of
    /// GPM allocations, Fig. 8). Samples whose target is non-positive
    /// cannot contribute a relative error; they are excluded from the
    /// statistics and *counted* in [`TrackingSummary::skipped_samples`]
    /// so a mostly-zero target series cannot masquerade as perfect
    /// tracking. The mean is taken over the compared samples only.
    pub fn against_series(actual: &TimeSeries, target: &TimeSeries) -> Self {
        assert_eq!(actual.len(), target.len(), "paired series must align");
        assert!(!actual.is_empty(), "empty trace");
        let mut over: f64 = 0.0;
        let mut under: f64 = 0.0;
        let mut abs_sum = 0.0;
        let mut compared = 0usize;
        let mut skipped = 0usize;
        for (a, t) in actual.samples().iter().zip(target.samples()) {
            if t.value <= 0.0 {
                skipped += 1;
                continue;
            }
            compared += 1;
            let e = (a.value - t.value) / t.value;
            over = over.max(e);
            under = under.max(-e);
            abs_sum += e.abs();
        }
        Self {
            max_overshoot_percent: over * 100.0,
            max_undershoot_percent: under * 100.0,
            mean_abs_error_percent: if compared > 0 {
                abs_sum / compared as f64 * 100.0
            } else {
                0.0
            },
            compared_samples: compared,
            skipped_samples: skipped,
        }
    }
}

/// PIC transient quality within one GPM segment (Fig. 9): the response to
/// one target step, observed over the PIC invocations until the next GPM
/// invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentMetrics {
    /// Peak excursion above the target, as a fraction of the target level.
    pub overshoot: f64,
    /// First invocation index from which the response stays within the
    /// band; `None` if it never settles within the segment.
    pub settling: Option<usize>,
    /// |last sample − target| / target.
    pub steady_state_error: f64,
}

/// Computes [`SegmentMetrics`] for one GPM segment.
///
/// * `trace` — island power at each PIC invocation within the segment,
/// * `target` — the allocation in force,
/// * `band` — settling band as a fraction of the target (e.g. 0.05).
pub fn segment_metrics(trace: &[f64], target: f64, band: f64) -> SegmentMetrics {
    assert!(!trace.is_empty() && target > 0.0);
    let peak = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let overshoot = ((peak - target) / target).max(0.0);
    let tol = band * target;
    let settling = match trace.iter().rposition(|&v| (v - target).abs() > tol) {
        None => Some(0),
        Some(last_bad) if last_bad + 1 < trace.len() => Some(last_bad + 1),
        Some(_) => None,
    };
    SegmentMetrics {
        overshoot,
        settling,
        steady_state_error: (trace[trace.len() - 1] - target).abs() / target,
    }
}

/// Settling under the *mean* criterion: the first invocation `k` such that
/// the average of `trace[k..]` lies within `band` of the target. With a
/// quantized DVFS actuator the steady state is a duty cycle between two
/// adjacent operating points, so the pointwise trace never enters a narrow
/// band — but its mean does, which is what "the steady state error is
/// reduced to almost 0 within 5-6 controller invocations" (§IV) measures on
/// a real power meter.
pub fn mean_settling(trace: &[f64], target: f64, band: f64) -> Option<usize> {
    assert!(!trace.is_empty() && target > 0.0);
    let tol = band * target;
    let mut suffix_sum = 0.0;
    let mut best = None;
    // Walk backwards accumulating suffix means.
    for k in (0..trace.len()).rev() {
        suffix_sum += trace[k];
        let mean = suffix_sum / (trace.len() - k) as f64;
        if (mean - target).abs() <= tol {
            best = Some(k);
        } else {
            // A farther-back start that includes this bad prefix can still
            // be fine, so keep scanning; `best` keeps the earliest k whose
            // suffix qualifies.
        }
    }
    best
}

/// The paper's §II-A robustness triple for one controlled run, computed at
/// the island level across all GPM segments and all islands: the worst
/// overshoot, the worst mean-criterion settling time, and the worst
/// steady-state (segment-mean) error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessSummary {
    /// Largest per-segment overshoot across islands, fraction of target.
    pub max_overshoot: f64,
    /// Largest mean-criterion settling time (PIC invocations); `None` when
    /// any segment never settles in the mean.
    pub max_settling: Option<usize>,
    /// Largest |segment mean − target| / target across segments.
    pub max_steady_state_error: f64,
}

/// Computes the [`RobustnessSummary`] over paired per-island actual/target
/// traces (PIC resolution), using `band` for the settling criterion.
pub fn robustness_summary(
    actuals: &[TimeSeries],
    targets: &[TimeSeries],
    pics_per_gpm: usize,
    band: f64,
) -> RobustnessSummary {
    assert_eq!(actuals.len(), targets.len());
    assert!(!actuals.is_empty());
    let mut out = RobustnessSummary {
        max_overshoot: 0.0,
        max_settling: Some(0),
        max_steady_state_error: 0.0,
    };
    for (actual, target) in actuals.iter().zip(targets) {
        let a: Vec<f64> = actual.values().collect();
        let t: Vec<f64> = target.values().collect();
        for (ca, ct) in a
            .chunks_exact(pics_per_gpm)
            .zip(t.chunks_exact(pics_per_gpm))
        {
            let m = segment_metrics(ca, ct[0], band);
            out.max_overshoot = out.max_overshoot.max(m.overshoot);
            out.max_settling = match (out.max_settling, mean_settling(ca, ct[0], band)) {
                (Some(w), Some(s)) => Some(w.max(s)),
                _ => None,
            };
            let mean = ca.iter().sum::<f64>() / ca.len() as f64;
            out.max_steady_state_error =
                out.max_steady_state_error.max((mean - ct[0]).abs() / ct[0]);
        }
    }
    out
}

/// Splits a full-run island trace into its GPM segments and reports the
/// worst-case segment metrics — the paper's headline controller numbers
/// (max overshoot across all segments, max settling time).
pub fn worst_segment_metrics(
    actual: &TimeSeries,
    target: &TimeSeries,
    pics_per_gpm: usize,
    band: f64,
) -> SegmentMetrics {
    assert_eq!(actual.len(), target.len());
    assert!(pics_per_gpm > 0 && actual.len() >= pics_per_gpm);
    let mut worst = SegmentMetrics {
        overshoot: 0.0,
        settling: Some(0),
        steady_state_error: 0.0,
    };
    let a: Vec<f64> = actual.values().collect();
    let t: Vec<f64> = target.values().collect();
    for (ca, ct) in a
        .chunks_exact(pics_per_gpm)
        .zip(t.chunks_exact(pics_per_gpm))
    {
        let m = segment_metrics(ca, ct[0], band);
        worst.overshoot = worst.overshoot.max(m.overshoot);
        worst.settling = match (worst.settling, m.settling) {
            (Some(w), Some(s)) => Some(w.max(s)),
            _ => None,
        };
        worst.steady_state_error = worst.steady_state_error.max(m.steady_state_error);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_units::Seconds;

    fn series(vals: &[f64]) -> TimeSeries {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (Seconds::from_ms(i as f64 * 0.5), v))
            .collect()
    }

    #[test]
    fn constant_target_summary() {
        let s = series(&[76.0, 82.0, 80.0, 79.0]);
        let t = TrackingSummary::against_constant(&s, 80.0);
        assert!((t.max_overshoot_percent - 2.5).abs() < 1e-9);
        assert!((t.max_undershoot_percent - 5.0).abs() < 1e-9);
        assert!(t.mean_abs_error_percent > 0.0);
    }

    #[test]
    fn paired_target_summary() {
        let a = series(&[10.0, 22.0, 30.0]);
        let t = series(&[10.0, 20.0, 30.0]);
        let s = TrackingSummary::against_series(&a, &t);
        assert!((s.max_overshoot_percent - 10.0).abs() < 1e-9);
        assert_eq!(s.max_undershoot_percent, 0.0);
        assert_eq!(s.compared_samples, 3);
        assert_eq!(s.skipped_samples, 0);
    }

    #[test]
    fn skipped_targets_are_counted_and_excluded_from_the_mean() {
        // Three zero-target samples and one real 10 % miss. The old code
        // divided by the full length, diluting the mean to 2.5 % and saying
        // nothing about the zeros.
        let a = series(&[5.0, 5.0, 5.0, 22.0]);
        let t = series(&[0.0, 0.0, -1.0, 20.0]);
        let s = TrackingSummary::against_series(&a, &t);
        assert_eq!(s.skipped_samples, 3);
        assert_eq!(s.compared_samples, 1);
        assert!((s.mean_abs_error_percent - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_targets_skipped_is_not_perfect_tracking() {
        let a = series(&[5.0, 5.0]);
        let t = series(&[0.0, 0.0]);
        let s = TrackingSummary::against_series(&a, &t);
        assert_eq!(s.compared_samples, 0);
        assert_eq!(s.skipped_samples, 2, "the zeros must be visible");
        assert_eq!(s.mean_abs_error_percent, 0.0);
    }

    #[test]
    fn segment_metrics_basic() {
        // Step to 20: rises, overshoots to 21, settles from index 4.
        let trace = [16.0, 19.0, 21.0, 20.5, 20.1, 20.0, 19.9, 20.0, 20.0, 20.0];
        let m = segment_metrics(&trace, 20.0, 0.02);
        assert!((m.overshoot - 0.05).abs() < 1e-12);
        assert_eq!(m.settling, Some(4));
        assert_eq!(m.steady_state_error, 0.0);
    }

    #[test]
    fn segment_that_never_settles() {
        let trace = [25.0, 15.0, 25.0, 15.0];
        let m = segment_metrics(&trace, 20.0, 0.02);
        assert_eq!(m.settling, None);
    }

    #[test]
    fn mean_settling_handles_duty_cycling() {
        // Alternates 17.5/20.7 around target 19.6: pointwise never settles,
        // but the mean does almost immediately.
        let trace = [24.0, 22.0, 17.5, 20.7, 17.5, 20.7, 17.5, 20.7, 20.7, 17.5];
        let m = segment_metrics(&trace, 19.6, 0.05);
        assert_eq!(m.settling, None, "pointwise criterion cannot settle");
        let k = mean_settling(&trace, 19.6, 0.05).expect("mean settles");
        assert!(k <= 3, "mean-settled at {k}");
    }

    #[test]
    fn mean_settling_rejects_biased_trace() {
        let trace = [30.0; 8];
        assert_eq!(mean_settling(&trace, 20.0, 0.05), None);
    }

    #[test]
    fn worst_segment_takes_maxima() {
        // Two segments of 5: first overshoots 10 %, second 25 %.
        let actual = series(&[
            20.0, 22.0, 20.0, 20.0, 20.0, //
            20.0, 25.0, 20.0, 20.0, 20.0,
        ]);
        let target = series(&[20.0; 10]);
        let w = worst_segment_metrics(&actual, &target, 5, 0.02);
        assert!((w.overshoot - 0.25).abs() < 1e-12);
        assert_eq!(w.settling, Some(2));
    }

    #[test]
    fn robustness_summary_aggregates_worst_cases() {
        // Two islands, two segments of 3 each. Island 1 is clean; island 2
        // overshoots 20 % in its second segment.
        let a1 = series(&[10.0, 10.0, 10.0, 10.0, 10.0, 10.0]);
        let t1 = series(&[10.0; 6]);
        let a2 = series(&[20.0, 20.0, 20.0, 24.0, 20.0, 20.0]);
        let t2 = series(&[20.0; 6]);
        let r = robustness_summary(&[a1, a2], &[t1, t2], 3, 0.05);
        assert!((r.max_overshoot - 0.2).abs() < 1e-12);
        assert!(r.max_settling.is_some());
        // Island 2 segment 2 mean = 21.33 → sse 6.7 %.
        assert!((r.max_steady_state_error - (64.0 / 3.0 - 20.0) / 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn unpaired_series_panics() {
        TrackingSummary::against_series(&series(&[1.0]), &series(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_target_panics() {
        TrackingSummary::against_constant(&series(&[1.0]), 0.0);
    }
}
