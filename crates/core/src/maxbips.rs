//! The MaxBIPS comparison baseline (Isci et al., reimplemented per §IV).
//!
//! MaxBIPS is an *open-loop* global manager: each interval it predicts, for
//! every island and every DVFS level, the power and BIPS that level would
//! produce, then picks the combination maximizing total predicted BIPS
//! subject to total predicted power ≤ budget, and sets the knobs directly —
//! no local feedback control. Its prediction table assumes:
//!
//! * dynamic power scales with `V²·f` and static power with `V` from the
//!   currently observed operating point (the affine split comes from a
//!   platform characterization of the static component),
//! * performance scales linearly with `f` (correct for CPU-bound work,
//!   optimistic for memory-bound work — one source of its inaccuracy).
//!
//! Because the table only contains the discrete knob settings, MaxBIPS
//! picks a combination whose predicted power is *below* the budget —
//! "a combination cannot always lead to power consumption that is equal to
//! budgeted power" — so it systematically undershoots (Fig. 11).
//!
//! The combination search is a knapsack-style dynamic program over
//! quantized power, exact to the quantization step and polynomial in
//! islands × levels × bins (an exhaustive 8-level/4-island scan is also
//! provided for cross-checking).

use cpm_power::dvfs::DvfsTable;
use cpm_units::Watts;

/// One island's observed state, from which the prediction table is built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxBipsObservation {
    /// Power at the current operating point.
    pub power: Watts,
    /// Characterized static (leakage) component of `power` — does not
    /// scale with frequency, only (weakly) with voltage.
    pub static_power: Watts,
    /// Throughput at the current operating point.
    pub bips: f64,
    /// Current DVFS index.
    pub dvfs_index: usize,
}

/// Reusable DP working storage, kept across GPM rounds so [`MaxBips::choose`]
/// allocates nothing but its (island-sized) result once warm.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Flat island-major prediction table: `preds[i * levels + l]` is
    /// island `i`'s `(power, bips)` prediction at level `l`, built once per
    /// round.
    preds: Vec<(Watts, f64)>,
    /// `dp[b]` = best total BIPS using ≤ b bins, islands processed so far.
    dp: Vec<f64>,
    /// The island currently being folded in (double buffer for `dp`).
    next: Vec<f64>,
    /// Flat island-major pick table: `choice[i * (bins + 1) + b]`.
    choice: Vec<i32>,
}

/// The open-loop MaxBIPS manager.
#[derive(Debug, Clone)]
pub struct MaxBips {
    table: DvfsTable,
    /// Power quantization step for the DP, watts.
    bin_watts: f64,
    /// Derating applied to the budget before the search. An open-loop
    /// manager has no way to correct a prediction miss inside the interval,
    /// so a characterized deployment derates by its table's error margin;
    /// 5 % matches our workloads' phase variability. Set 0 for the raw
    /// textbook algorithm.
    safety_margin: f64,
    scratch: Scratch,
    /// Memoized `(budget, observations) → result` of the last `choose`
    /// call. The open-loop MaxBIPS manager re-evaluates an identical
    /// static characterization table every GPM round, so after the first
    /// round the search is a repeat; inputs are compared bit-exactly
    /// (`f64 ==`), so a replay returns exactly what recomputation would.
    last: Option<ChooseMemo>,
}

#[derive(Debug, Clone, Default)]
struct ChooseMemo {
    budget: Watts,
    observations: Vec<MaxBipsObservation>,
    result: Vec<usize>,
}

impl MaxBips {
    /// Creates a manager over the chip's DVFS table with the default
    /// 0.1 W DP quantization.
    pub fn new(table: DvfsTable) -> Self {
        Self {
            table,
            bin_watts: 0.1,
            safety_margin: 0.05,
            scratch: Scratch::default(),
            last: None,
        }
    }

    /// Overrides the DP power quantization (coarser = faster, slightly
    /// less optimal).
    pub fn with_bin_watts(mut self, bin: f64) -> Self {
        assert!(bin > 0.0);
        self.bin_watts = bin;
        self
    }

    /// Overrides the prediction-error safety margin (0 = none).
    pub fn with_safety_margin(mut self, margin: f64) -> Self {
        assert!((0.0..1.0).contains(&margin));
        self.safety_margin = margin;
        self
    }

    /// The `(power, bips)` prediction for one island at one DVFS level —
    /// the allocation-free scalar form of [`MaxBips::predict`].
    pub fn predict_level(&self, obs: MaxBipsObservation, level: usize) -> (Watts, f64) {
        let cur = self.table.point(obs.dvfs_index);
        let cur_v2f = cur.v2f();
        let cur_f = cur.frequency.value();
        let cur_v = cur.voltage.value();
        let stat = obs.static_power.min(obs.power);
        let dyn_p = obs.power - stat;
        let p = self.table.point(level);
        let power = stat * (p.voltage.value() / cur_v) + dyn_p * (p.v2f() / cur_v2f);
        let bips = obs.bips * (p.frequency.value() / cur_f);
        (power, bips)
    }

    /// Builds the per-level prediction for one island: `(power, bips)` per
    /// DVFS index.
    pub fn predict(&self, obs: MaxBipsObservation) -> Vec<(Watts, f64)> {
        (0..self.table.len())
            .map(|l| self.predict_level(obs, l))
            .collect()
    }

    /// Chooses the DVFS index per island maximizing Σ predicted BIPS with
    /// Σ predicted power ≤ `budget` (knapsack DP over quantized power).
    /// When even the all-lowest combination exceeds the budget, returns
    /// all-lowest (the least-bad feasible action).
    ///
    /// The prediction table and DP tables live in a scratch buffer reused
    /// across rounds (hence `&mut self`); once warm, the only allocation is
    /// the island-sized result vector.
    pub fn choose(&mut self, budget: Watts, observations: &[MaxBipsObservation]) -> Vec<usize> {
        assert!(!observations.is_empty());
        if let Some(m) = &self.last {
            if m.budget == budget && m.observations == observations {
                return m.result.clone();
            }
        }
        let result = self.choose_uncached(budget, observations);
        self.last = Some(ChooseMemo {
            budget,
            observations: observations.to_vec(),
            result: result.clone(),
        });
        result
    }

    /// The memo-free search behind [`Self::choose`] — public so benches
    /// measure the DP itself, not a memo replay.
    pub fn choose_uncached(
        &mut self,
        budget: Watts,
        observations: &[MaxBipsObservation],
    ) -> Vec<usize> {
        let budget = budget * (1.0 - self.safety_margin);
        let n = observations.len();
        let levels = self.table.len();
        let bin_watts = self.bin_watts;
        // Build the prediction table once per round, flat and island-major.
        // (Same arithmetic as `predict_level`, with the per-island current-
        // point terms hoisted out of the level loop.)
        let scratch = &mut self.scratch;
        scratch.preds.clear();
        scratch.preds.reserve(n * levels);
        for &o in observations {
            let cur = self.table.point(o.dvfs_index);
            let cur_v2f = cur.v2f();
            let cur_f = cur.frequency.value();
            let cur_v = cur.voltage.value();
            let stat = o.static_power.min(o.power);
            let dyn_p = o.power - stat;
            for p in self.table.points() {
                let power = stat * (p.voltage.value() / cur_v) + dyn_p * (p.v2f() / cur_v2f);
                let bips = o.bips * (p.frequency.value() / cur_f);
                scratch.preds.push((power, bips));
            }
        }
        let bins = (budget.value() / bin_watts).floor() as usize;
        if bins == 0 {
            return vec![0; n];
        }
        // dp[b] = best total BIPS using ≤ b bins; choice[i·(bins+1)+b] =
        // level picked.
        const NEG: f64 = f64::NEG_INFINITY;
        scratch.dp.clear();
        scratch.dp.resize(bins + 1, 0.0);
        scratch.choice.clear();
        scratch.choice.resize(n * (bins + 1), -1);
        for i in 0..n {
            let pred = &scratch.preds[i * levels..(i + 1) * levels];
            scratch.next.clear();
            scratch.next.resize(bins + 1, NEG);
            let pick = &mut scratch.choice[i * (bins + 1)..(i + 1) * (bins + 1)];
            for (lvl, &(p, bips)) in pred.iter().enumerate() {
                // Round power *up* so the real total cannot exceed budget.
                let cost = (p.value() / bin_watts).ceil() as usize;
                // An iterator chain would obscure the dual indexing of
                // dp[b-cost] against next[b]/pick[b].
                #[allow(clippy::needless_range_loop)] // b indexes 3 tables at 2 offsets
                for b in cost..=bins {
                    if scratch.dp[b - cost] > NEG {
                        let cand = scratch.dp[b - cost] + bips;
                        if cand > scratch.next[b] {
                            scratch.next[b] = cand;
                            pick[b] = lvl as i32;
                        }
                    }
                }
            }
            // Make dp monotone in b (≤ b semantics) while keeping pick
            // consistent: propagate the best smaller-budget solution up.
            for b in 1..=bins {
                if scratch.next[b - 1] > scratch.next[b] {
                    scratch.next[b] = scratch.next[b - 1];
                    pick[b] = pick[b - 1];
                }
            }
            std::mem::swap(&mut scratch.dp, &mut scratch.next);
        }
        if scratch.dp[bins] == NEG {
            // No feasible combination: clamp everything to the floor.
            return vec![0; n];
        }
        // Backtrack. `pick[b]` was stored against the monotone-adjusted
        // table, so rewind per island by subtracting the picked cost.
        let mut out = vec![0usize; n];
        let mut b = bins;
        for i in (0..n).rev() {
            // Find the effective bin (monotone propagation may have come
            // from below).
            let lvl = scratch.choice[i * (bins + 1) + b];
            debug_assert!(lvl >= 0);
            let lvl = lvl.max(0) as usize;
            out[i] = lvl;
            let cost = (scratch.preds[i * levels + lvl].0.value() / bin_watts).ceil() as usize;
            b = b.saturating_sub(cost);
        }
        out
    }

    /// Exhaustive reference search (exponential; use only for small
    /// configurations in tests/benches).
    pub fn choose_exhaustive(
        &self,
        budget: Watts,
        observations: &[MaxBipsObservation],
    ) -> Vec<usize> {
        let budget = budget * (1.0 - self.safety_margin);
        let preds: Vec<Vec<(Watts, f64)>> = observations.iter().map(|&o| self.predict(o)).collect();
        let n = observations.len();
        let levels = self.table.len();
        let mut best = vec![0usize; n];
        let mut best_bips = f64::NEG_INFINITY;
        let mut combo = vec![0usize; n];
        loop {
            let power: f64 = combo
                .iter()
                .enumerate()
                .map(|(i, &l)| preds[i][l].0.value())
                .sum();
            if power <= budget.value() {
                let bips: f64 = combo.iter().enumerate().map(|(i, &l)| preds[i][l].1).sum();
                if bips > best_bips {
                    best_bips = bips;
                    best.copy_from_slice(&combo);
                }
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == n {
                    return best;
                }
                combo[i] += 1;
                if combo[i] < levels {
                    break;
                }
                combo[i] = 0;
                i += 1;
            }
        }
    }

    /// Total predicted power of a chosen combination.
    pub fn predicted_power(&self, observations: &[MaxBipsObservation], combo: &[usize]) -> Watts {
        observations
            .iter()
            .zip(combo)
            .map(|(&o, &l)| self.predict_level(o, l).0)
            .sum()
    }

    /// Total predicted BIPS of a chosen combination.
    pub fn predicted_bips(&self, observations: &[MaxBipsObservation], combo: &[usize]) -> f64 {
        observations
            .iter()
            .zip(combo)
            .map(|(&o, &l)| self.predict_level(o, l).1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(power: f64, bips: f64, idx: usize) -> MaxBipsObservation {
        MaxBipsObservation {
            power: Watts::new(power),
            static_power: Watts::new(power * 0.2),
            bips,
            dvfs_index: idx,
        }
    }

    fn mgr() -> MaxBips {
        MaxBips::new(DvfsTable::pentium_m())
    }

    #[test]
    fn prediction_scales_v2f_and_f() {
        let m = mgr();
        let table = DvfsTable::pentium_m();
        let pred = m.predict(obs(20.0, 2.0, 7));
        // At the current index the prediction is the observation itself.
        assert!((pred[7].0.value() - 20.0).abs() < 1e-9);
        assert!((pred[7].1 - 2.0).abs() < 1e-12);
        // At the bottom: dynamic scales by v2f ratio, static by voltage,
        // bips by frequency ratio.
        let ratio_p = table.point(0).v2f() / table.point(7).v2f();
        let ratio_v = table.point(0).voltage.value() / table.point(7).voltage.value();
        let ratio_f = 600.0 / 2000.0;
        let expect = 4.0 * ratio_v + 16.0 * ratio_p;
        assert!((pred[0].0.value() - expect).abs() < 1e-9);
        assert!((pred[0].1 - 2.0 * ratio_f).abs() < 1e-12);
    }

    #[test]
    fn generous_budget_selects_top_everywhere() {
        let mut m = mgr();
        let o = vec![obs(20.0, 2.0, 7); 4];
        let combo = m.choose(Watts::new(1000.0), &o);
        assert_eq!(combo, vec![7; 4]);
    }

    #[test]
    fn tight_budget_never_exceeded() {
        let mut m = mgr();
        let o = vec![obs(20.0, 2.0, 7); 4];
        for budget in [30.0, 45.0, 60.0, 75.0] {
            let combo = m.choose(Watts::new(budget), &o);
            let p = m.predicted_power(&o, &combo);
            assert!(
                p.value() <= budget + 1e-9,
                "budget {budget}: predicted {p} with {combo:?}"
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_on_small_cases() {
        let mut m = mgr().with_bin_watts(0.01);
        let o = vec![
            obs(22.0, 2.4, 7),
            obs(18.0, 1.1, 7),
            obs(25.0, 3.0, 7),
            obs(16.0, 0.9, 7),
        ];
        for budget in [40.0, 55.0, 70.0] {
            let dp = m.choose(Watts::new(budget), &o);
            let ex = m.choose_exhaustive(Watts::new(budget), &o);
            let bips_dp = m.predicted_bips(&o, &dp);
            let bips_ex = m.predicted_bips(&o, &ex);
            assert!(
                bips_dp >= bips_ex - 0.02,
                "budget {budget}: DP {bips_dp} vs exhaustive {bips_ex}"
            );
            assert!(m.predicted_power(&o, &dp).value() <= budget + 1e-9);
        }
    }

    #[test]
    fn impossible_budget_clamps_to_floor() {
        let mut m = mgr();
        let o = vec![obs(20.0, 2.0, 7); 4];
        // All-lowest costs 4 · 20·(v2f0/v2f7) ≈ 4 · 3.26 = 13 W; ask for 1 W.
        let combo = m.choose(Watts::new(1.0), &o);
        assert_eq!(combo, vec![0; 4]);
    }

    #[test]
    fn high_bips_islands_win_the_budget() {
        let mut m = mgr();
        // Island 0 converts power into twice the throughput of island 1.
        let o = vec![obs(20.0, 4.0, 7), obs(20.0, 2.0, 7)];
        let combo = m.choose(Watts::new(30.0), &o);
        assert!(
            combo[0] > combo[1],
            "the efficient island should run faster: {combo:?}"
        );
    }

    #[test]
    fn undershoot_is_systematic() {
        // Fig. 11's observation: with discrete knobs the chosen combination
        // predicts strictly below budget for most budgets.
        let mut m = mgr();
        let o = vec![obs(20.0, 2.0, 7); 4];
        let mut undershoots = 0;
        for pct in [50.0, 60.0, 70.0, 80.0, 90.0] {
            let budget = 80.0 * pct / 100.0;
            let combo = m.choose(Watts::new(budget), &o);
            let p = m.predicted_power(&o, &combo).value();
            if p < budget - 0.5 {
                undershoots += 1;
            }
        }
        assert!(undershoots >= 3, "{undershoots} of 5 budgets undershot");
    }

    #[test]
    fn scales_to_32_islands() {
        let mut m = mgr().with_bin_watts(0.25);
        let o: Vec<_> = (0..32)
            .map(|i| obs(18.0 + (i % 5) as f64, 1.0 + (i % 3) as f64, 7))
            .collect();
        let combo = m.choose(Watts::new(400.0), &o);
        assert_eq!(combo.len(), 32);
        assert!(m.predicted_power(&o, &combo).value() <= 400.0 + 1e-9);
    }
}
