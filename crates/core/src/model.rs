//! System identification against the running chip (§II-D).
//!
//! The paper builds its PIC design on the first-order plant model
//! `P(t+1) = P(t) + aᵢ·d(t)` (Eq. 8), identified by running the PARSEC
//! suite *except bodytrack*, fitting the gain per workload, and averaging
//! (obtaining `a = 0.79`); the model is then validated by running bodytrack
//! on all islands under white-noise DVFS wiggling and comparing predicted
//! vs actual power (Fig. 5, average error within ~1 %).
//!
//! This module reproduces both steps against the simulator:
//! [`identify_gain`] fits `aᵢ` for one workload, [`identify_gain_paper`]
//! averages across the leave-bodytrack-out suite, and [`validate_model`]
//! produces the Fig. 5 traces and error.

use cpm_control::noise::WhiteNoise;
use cpm_control::sysid::fit_gain_through_origin;
use cpm_sim::{Chip, CmpConfig};
use cpm_units::IslandId;
use cpm_workloads::{parsec, BenchmarkProfile, WorkloadAssignment};

/// Builds a chip running one benchmark on every core.
fn homogeneous_chip(cmp: &CmpConfig, profile: &BenchmarkProfile) -> Chip {
    let assignment =
        WorkloadAssignment::new(vec![profile.clone(); cmp.cores], cmp.cores_per_island);
    Chip::new(cmp.clone(), &assignment)
}

/// Normalized island power: fraction of the island's share of the
/// max-power basis.
fn island_p_norm(chip: &Chip, island_power: f64) -> f64 {
    let islands = chip.config().islands() as f64;
    island_power / (chip.max_power().value() / islands)
}

/// Normalized frequency position of a DVFS index in `[0, 1]`.
fn f_norm(cmp: &CmpConfig, idx: usize) -> f64 {
    let t = &cmp.dvfs;
    (t.point(idx).frequency - t.min_point().frequency) / t.frequency_span()
}

/// Fits the plant gain `a` for one workload by wandering the DVFS knobs
/// randomly and regressing normalized power deltas on normalized frequency
/// deltas (through the origin, Eq. 8).
pub fn identify_gain(cmp: &CmpConfig, profile: &BenchmarkProfile, seed: u64, rounds: usize) -> f64 {
    let mut chip = homogeneous_chip(cmp, profile);
    let mut noise = WhiteNoise::new(seed, 1.0);
    let islands = cmp.islands();
    let levels = cmp.dvfs.len();
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut prev_idx = vec![levels - 1; islands];
    let mut prev_p: Option<Vec<f64>> = None;
    for _ in 0..rounds {
        // Pick a random level per island.
        let idx: Vec<usize> = (0..islands)
            .map(|_| {
                let u = (noise.next_uniform() + 1.0) / 2.0; // [0,1]
                ((u * levels as f64) as usize).min(levels - 1)
            })
            .collect();
        for (i, &l) in idx.iter().enumerate() {
            chip.set_island_dvfs(IslandId(i), l);
        }
        // First interval absorbs the transition; measure the second.
        chip.step_pic();
        let snap = chip.step_pic();
        let p: Vec<f64> = snap
            .islands
            .iter()
            .map(|s| island_p_norm(&chip, s.power.value()))
            .collect();
        if let Some(prev) = &prev_p {
            for i in 0..islands {
                let d = f_norm(cmp, idx[i]) - f_norm(cmp, prev_idx[i]);
                if d.abs() > 1e-9 {
                    samples.push((d, p[i] - prev[i]));
                }
            }
        }
        prev_p = Some(p);
        prev_idx = idx;
    }
    fit_gain_through_origin(&samples).expect("identification needs varied frequencies")
}

/// The paper's identification protocol: fit `a` for every PARSEC benchmark
/// except bodytrack and average.
pub fn identify_gain_paper(cmp: &CmpConfig, seed: u64, rounds: usize) -> f64 {
    let suite: Vec<BenchmarkProfile> = parsec::all()
        .into_iter()
        .filter(|p| p.short != "btrack")
        .collect();
    let sum: f64 = suite
        .iter()
        .enumerate()
        .map(|(k, p)| identify_gain(cmp, p, seed.wrapping_add(k as u64), rounds))
        .sum();
    sum / suite.len() as f64
}

/// The Fig. 5 validation run: bodytrack on all islands, white-noise DVFS,
/// one-step model prediction vs actual power.
#[derive(Debug, Clone)]
pub struct ModelValidation {
    /// Actual normalized island-0 power per sample.
    pub actual: Vec<f64>,
    /// Model-predicted normalized power per sample.
    pub predicted: Vec<f64>,
    /// Mean |predicted − actual| / actual.
    pub mean_relative_error: f64,
}

/// Runs the validation experiment with plant gain `a`.
pub fn validate_model(cmp: &CmpConfig, gain: f64, seed: u64, rounds: usize) -> ModelValidation {
    let profile = parsec::bodytrack();
    let mut chip = homogeneous_chip(cmp, &profile);
    let mut noise = WhiteNoise::new(seed, 1.0);
    let levels = cmp.dvfs.len();
    let mut actual = Vec::with_capacity(rounds);
    let mut predicted = Vec::with_capacity(rounds);
    let mut prev_idx = levels - 1;
    let mut prev_p: Option<f64> = None;
    for _ in 0..rounds {
        let u = (noise.next_uniform() + 1.0) / 2.0;
        let idx = ((u * levels as f64) as usize).min(levels - 1);
        for i in 0..cmp.islands() {
            chip.set_island_dvfs(IslandId(i), idx);
        }
        chip.step_pic();
        let snap = chip.step_pic();
        let p = island_p_norm(&chip, snap.islands[0].power.value());
        if let Some(pp) = prev_p {
            let d = f_norm(cmp, idx) - f_norm(cmp, prev_idx);
            actual.push(p);
            predicted.push(pp + gain * d);
        }
        prev_p = Some(p);
        prev_idx = idx;
    }
    let mean_relative_error = actual
        .iter()
        .zip(&predicted)
        .map(|(a, m)| ((m - a) / a).abs())
        .sum::<f64>()
        / actual.len().max(1) as f64;
    ModelValidation {
        actual,
        predicted,
        mean_relative_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp() -> CmpConfig {
        CmpConfig::paper_default()
    }

    #[test]
    fn identified_gain_is_in_the_papers_ballpark() {
        // The paper reports a = 0.79 for its platform. Our power model is
        // calibrated similarly, so the identified normalized gain should
        // land in the same neighbourhood.
        let a = identify_gain(&cmp(), &parsec::blackscholes(), 42, 60);
        assert!(
            (0.4..1.2).contains(&a),
            "identified gain {a} outside the plausible band"
        );
    }

    #[test]
    fn gain_identification_is_deterministic() {
        let a = identify_gain(&cmp(), &parsec::x264(), 7, 40);
        let b = identify_gain(&cmp(), &parsec::x264(), 7, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn leave_one_out_average_is_similar_to_individual_fits() {
        let avg = identify_gain_paper(&cmp(), 11, 30);
        assert!((0.4..1.2).contains(&avg), "suite average {avg}");
    }

    #[test]
    fn model_validation_error_is_small() {
        // Fig. 5: "our system model is quite accurate with an average error
        // well within 10 %" (the paper says within ~1 % on their stack; the
        // synthetic substrate carries more phase noise).
        let a = identify_gain_paper(&cmp(), 3, 30);
        let v = validate_model(&cmp(), a, 5, 80);
        assert!(
            v.mean_relative_error < 0.10,
            "one-step prediction error {}",
            v.mean_relative_error
        );
        assert_eq!(v.actual.len(), v.predicted.len());
        assert!(!v.actual.is_empty());
    }

    #[test]
    fn wrong_gain_predicts_worse() {
        let good = validate_model(&cmp(), 0.79, 5, 80);
        let bad = validate_model(&cmp(), 3.0, 5, 80);
        assert!(bad.mean_relative_error > good.mean_relative_error);
    }
}
