//! The two-tier runtime harness: chip + GPM + PICs on the Fig. 4 timeline.
//!
//! A [`Coordinator`] owns a simulated [`Chip`] and drives it under one of
//! three management schemes:
//!
//! * [`ManagementScheme::Cpm`] — the paper's architecture: the GPM
//!   provisions power every `T_global`, the PICs cap island power every
//!   `T_local`;
//! * [`ManagementScheme::MaxBips`] — the open-loop baseline: a global
//!   manager sets DVFS knobs directly from a prediction table each
//!   `T_global`, with no local feedback;
//! * [`ManagementScheme::NoManagement`] — every island pinned at the top
//!   operating point (the performance reference all degradation numbers
//!   are quoted against).
//!
//! Before measurement, transducer-sensed CPM runs perform a calibration
//! sweep: each DVFS level is visited for a couple of PIC intervals while
//! the utilization↔power pairs are fed to every island's transducer
//! (standing in for the platform characterization of §II-D/Fig. 6).

use crate::gpm::{GlobalPowerManager, IslandFeedback, IslandRange, ProvisioningPolicy};
use crate::maxbips::{MaxBips, MaxBipsObservation};
use crate::metrics::TrackingSummary;
use crate::pic::{PerIslandController, PicSensor};
use crate::policies::energy::EnergyAware;
use crate::policies::performance::PerformanceAware;
use crate::policies::qos::{QosAware, QosClass};
use crate::policies::thermal::{ThermalAware, ThermalConstraints, ViolationStats};
use crate::policies::variation::VariationAware;
use cpm_control::PidGains;
use cpm_obs::{ControlPhase, EventPayload, PhaseProfiler, Recorder, Registry, SpanId};
use cpm_power::variation::VariationMap;
use cpm_power::EnergyAccount;
use cpm_sim::{Chip, ChipSnapshot, CmpConfig, InjectionSeam, TimeSeries};
use cpm_thermal::HotspotTracker;
use cpm_units::{Celsius, IslandId, Ratio, Seconds, Watts};
use cpm_workloads::{Mix, WorkloadAssignment};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a memo cache, recovering a poisoned lock. Both caches are only
/// mutated by whole-entry inserts of already-computed values, so a
/// probe/sweep panicking elsewhere can never leave an entry half-written;
/// wedging every later coordinator over an already-propagated panic would
/// turn one failed cell into a process-wide outage.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Test support: panics *while holding* each memo lock (caught here),
/// leaving them poisoned exactly as a prober dying mid-lookup would.
/// Subsequent probes and calibration sweeps must recover, not wedge.
#[doc(hidden)]
pub fn poison_memo_caches_for_tests() {
    let cases: [fn(); 2] = [
        || {
            let _guard = PROBE_MEMO.get_or_init(Default::default).lock();
            panic!("poisoning probe memo");
        },
        || {
            let _guard = CALIB_SWEEP_MEMO.get_or_init(Default::default).lock();
            panic!("poisoning calib sweep memo");
        },
    ];
    for poison in cases {
        let _ = std::panic::catch_unwind(poison);
    }
}

// Reference-power probe memoization. The probe is a pure function of the
// chip's construction inputs (config, workload assignment, variation map):
// it runs on a clone of the freshly built chip, so sweep cells that differ
// only in budget or scheme re-measure the identical value. The memo key is
// the exact `Debug` rendering of those inputs (`{:?}` for `f64` is
// round-trip exact), so a cached value is always bit-identical to
// recomputation and the workers=1 vs workers=4 byte-determinism gate is
// unaffected by which thread populates the cache first.
static PROBE_MEMO: OnceLock<Mutex<HashMap<String, Watts>>> = OnceLock::new();
static PROBE_HITS: AtomicU64 = AtomicU64::new(0);
static PROBE_MISSES: AtomicU64 = AtomicU64::new(0);

/// A completed transducer-calibration sweep: the chip state it left behind
/// and the per-step `(capacity utilization, power)` observation rows it fed
/// the PICs (one row per observed interval, islands in order). The sweep is
/// open loop — a fixed DVFS schedule on the freshly built chip, no
/// controller in the loop — so it is a pure function of the same
/// construction key the probe memo uses. A cache hit restores the exact
/// post-sweep chip state and replays the identical observation sequence
/// into this coordinator's own PICs, making it bit-identical to re-running
/// the sweep.
#[derive(Clone)]
struct CalibSweep {
    chip: Chip,
    rows: Vec<Vec<(Ratio, Watts)>>,
}

static CALIB_SWEEP_MEMO: OnceLock<Mutex<HashMap<String, CalibSweep>>> = OnceLock::new();
static CALIB_SWEEP_HITS: AtomicU64 = AtomicU64::new(0);
static CALIB_SWEEP_MISSES: AtomicU64 = AtomicU64::new(0);

/// How the PIC senses power (re-exported for the public API).
pub type SensorMode = PicSensor;

/// Which GPM provisioning policy a CPM run uses.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// Performance-aware (Eqs. 1–6) — the paper's default.
    Performance,
    /// Thermal-aware (§IV-A) wrapping the performance policy.
    Thermal(ThermalConstraints),
    /// Variation-aware greedy EPI search (§IV-B).
    Variation,
    /// Energy minimization with a per-island minimum performance guarantee
    /// (the fraction of unthrottled throughput each island keeps). Named
    /// feasible in §II-C; implemented as an extension.
    Energy {
        /// Guaranteed fraction of reference throughput, in `(0, 1)`.
        guarantee: f64,
    },
    /// Strict-priority / weighted-share QoS provisioning (one class per
    /// island, island order). Also named feasible in §II-C.
    Qos(Vec<QosClass>),
}

/// The management scheme under test.
#[derive(Debug, Clone)]
pub enum ManagementScheme {
    /// The paper's two-tier GPM + PIC architecture.
    Cpm(PolicyKind),
    /// The open-loop MaxBIPS baseline.
    MaxBips,
    /// No power management: all islands at the top V/F point.
    NoManagement,
}

/// Everything one experiment needs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The chip.
    pub cmp: CmpConfig,
    /// Which paper mix to schedule.
    pub mix: Mix,
    /// Chip power budget as a fraction of the chip's *required* power —
    /// what the unmanaged chip draws at full speed ("the total power budget
    /// is 80 % of the required power by the whole chip", §IV). The
    /// coordinator measures that reference with a short unmanaged probe run
    /// at construction.
    pub budget_fraction: Ratio,
    /// Management scheme.
    pub scheme: ManagementScheme,
    /// PIC design point.
    pub pid_gains: PidGains,
    /// Identified plant gain `a` (paper: 0.79).
    pub plant_gain: f64,
    /// PIC sensing path.
    pub sensor: SensorMode,
    /// Per-island leakage variation (`None` = uniform silicon).
    pub variation: Option<VariationMap>,
    /// Explicit workload placement overriding `mix` (must match the chip
    /// topology). Used by the island-size and interval-sensitivity
    /// experiments, which re-group the same benchmarks into different
    /// island widths.
    pub assignment: Option<WorkloadAssignment>,
    /// Enable online plant-gain adaptation in the PICs (§II-D notes `aᵢ`
    /// varies across workloads; adaptation stays inside the guaranteed
    /// stability band).
    pub adaptive_gain: bool,
}

impl ExperimentConfig {
    /// The paper's default experiment: 8-core/4-island chip, Mix-1,
    /// 80 % budget, performance-aware CPM, transducer sensing.
    pub fn paper_default() -> Self {
        Self {
            cmp: CmpConfig::paper_default(),
            mix: Mix::Mix1,
            budget_fraction: Ratio::from_percent(80.0),
            scheme: ManagementScheme::Cpm(PolicyKind::Performance),
            pid_gains: PidGains::paper(),
            plant_gain: 0.79,
            sensor: SensorMode::Transducer,
            variation: None,
            assignment: None,
            adaptive_gain: false,
        }
    }

    /// Same experiment with an explicit workload placement (topology is
    /// taken from the assignment).
    pub fn with_assignment(mut self, assignment: WorkloadAssignment) -> Self {
        self.cmp = CmpConfig::with_topology(assignment.cores(), assignment.cores_per_island());
        self.assignment = Some(assignment);
        self
    }

    /// Same experiment under a different budget.
    pub fn with_budget_percent(mut self, pct: f64) -> Self {
        self.budget_fraction = Ratio::from_percent(pct);
        self
    }

    /// Same experiment under a different scheme.
    pub fn with_scheme(mut self, scheme: ManagementScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Same experiment with a different mix/topology.
    pub fn with_mix(mut self, mix: Mix, cores: usize, cores_per_island: usize) -> Self {
        self.mix = mix;
        self.cmp = CmpConfig::with_topology(cores, cores_per_island);
        self
    }
}

/// Configuration errors surfaced by [`Coordinator::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The mix does not fit the chip topology.
    MixTopologyMismatch(String),
    /// The budget is below the chip's idle floor.
    InfeasibleBudget(String),
    /// The variation map does not cover the islands.
    VariationMismatch(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MixTopologyMismatch(s) => write!(f, "mix/topology mismatch: {s}"),
            ConfigError::InfeasibleBudget(s) => write!(f, "infeasible budget: {s}"),
            ConfigError::VariationMismatch(s) => write!(f, "variation mismatch: {s}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Results of a coordinated run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Chip budget in watts.
    pub budget: Watts,
    /// The theoretical chip maximum (all cores at top V/F, fully active,
    /// hot) — absolute context only.
    pub max_chip_power: Watts,
    /// The percent basis: the chip's measured unmanaged (full-speed) power
    /// requirement. The unmanaged chip reads ≈ 100 % on this scale.
    pub reference_power: Watts,
    /// Chip power per PIC interval, percent of the reference.
    pub chip_power_percent: TimeSeries,
    /// Per-island actual power, percent of the reference.
    pub island_actual_percent: Vec<TimeSeries>,
    /// Per-island allocated target, percent of the reference.
    pub island_target_percent: Vec<TimeSeries>,
    /// Per-island DVFS operating-point index per PIC interval.
    pub island_dvfs_index: Vec<TimeSeries>,
    /// Chip BIPS per PIC interval.
    pub chip_bips: TimeSeries,
    /// Hottest core temperature per PIC interval, °C.
    pub peak_temperature: TimeSeries,
    /// Total instructions retired during measurement.
    pub total_instructions: f64,
    /// Measured wall-clock (simulated) time.
    pub measured_time: Seconds,
    /// Thermal constraint statistics (thermal-aware runs only).
    pub violations: Option<ViolationStats>,
    /// Final transducer R² per island, where calibrated.
    pub transducer_r2: Vec<Option<f64>>,
    /// Per-island energy accounts over the measurement window.
    pub island_energy: Vec<EnergyAccount>,
    /// PIC invocations per GPM interval (for re-sampling traces to GPM
    /// resolution).
    pub pics_per_gpm: usize,
}

impl Outcome {
    /// Budget as percent of the required-power reference.
    pub fn budget_percent(&self) -> f64 {
        self.budget.value() / self.reference_power.value() * 100.0
    }

    /// Chip power re-sampled to GPM-interval resolution (what a 5 ms power
    /// meter — and the paper's Fig. 10 — reports; PIC-rate duty-cycling
    /// between the discrete V/F points averages out at this scale).
    pub fn chip_power_percent_gpm(&self) -> cpm_sim::TimeSeries {
        self.chip_power_percent.averaged_chunks(self.pics_per_gpm)
    }

    /// Island power at GPM resolution (Fig. 8's scale).
    pub fn island_actual_percent_gpm(&self, island: IslandId) -> cpm_sim::TimeSeries {
        self.island_actual_percent[island.index()].averaged_chunks(self.pics_per_gpm)
    }

    /// Island targets at GPM resolution.
    pub fn island_target_percent_gpm(&self, island: IslandId) -> cpm_sim::TimeSeries {
        self.island_target_percent[island.index()].averaged_chunks(self.pics_per_gpm)
    }

    /// Mean DVFS operating-point index an island ran at over the whole
    /// measurement (7 = the top Pentium-M point, 0 = the bottom).
    pub fn mean_island_dvfs(&self, island: IslandId) -> f64 {
        self.island_dvfs_index[island.index()].mean().unwrap_or(0.0)
    }

    /// The §II-A robustness triple (worst overshoot / settling /
    /// steady-state error) across all islands and GPM segments, with a
    /// ±`band` settling criterion.
    pub fn robustness(&self, band: f64) -> crate::metrics::RobustnessSummary {
        crate::metrics::robustness_summary(
            &self.island_actual_percent,
            &self.island_target_percent,
            self.pics_per_gpm,
            band,
        )
    }

    /// Chip-level tracking quality against the budget, at the GPM
    /// resolution the paper quotes (Fig. 10's ±4 % band).
    pub fn chip_tracking_error(&self) -> TrackingSummary {
        TrackingSummary::against_constant(&self.chip_power_percent_gpm(), self.budget_percent())
    }

    /// Island-level tracking quality against its (time-varying) targets,
    /// at GPM resolution.
    pub fn island_tracking_error(&self, island: IslandId) -> TrackingSummary {
        TrackingSummary::against_series(
            &self.island_actual_percent_gpm(island),
            &self.island_target_percent_gpm(island),
        )
    }

    /// Mean chip power, percent of the reference.
    pub fn mean_chip_power_percent(&self) -> f64 {
        self.chip_power_percent.mean().unwrap_or(0.0)
    }

    /// Mean chip throughput over the run, BIPS.
    pub fn mean_bips(&self) -> f64 {
        self.chip_bips.mean().unwrap_or(0.0)
    }

    /// Performance degradation relative to a reference run (e.g.
    /// no-management at full speed), in percent.
    pub fn degradation_vs(&self, reference: &Outcome) -> f64 {
        (1.0 - self.total_instructions / reference.total_instructions) * 100.0
    }
}

enum Manager {
    Cpm {
        gpm: GlobalPowerManager,
        pics: Vec<PerIslandController>,
    },
    MaxBips {
        mb: MaxBips,
        /// The *static* prediction table ("the scheme selects DVFS
        /// co-ordinates from a static prediction table", §IV): per-island
        /// observations characterized once, from the first full GPM
        /// interval, and never refreshed — the open-loop staleness that
        /// separates MaxBIPS from the feedback-driven CPM as workloads
        /// move through phases.
        static_table: Option<Vec<MaxBipsObservation>>,
    },
    None,
}

/// The two-tier runtime.
pub struct Coordinator {
    cfg: ExperimentConfig,
    chip: Chip,
    manager: Manager,
    /// Measured unmanaged full-speed chip power (the percent basis).
    reference_power: Watts,
    /// Current island allocations (watts).
    alloc: Vec<Watts>,
    calibrated: bool,
    /// Flight-recorder handle shared with the GPM, PICs, policies, and the
    /// hotspot tracker (disabled by default).
    recorder: Recorder,
    /// Metrics registry (always present — instruments are only touched at
    /// interval granularity, never per PIC step).
    registry: Registry,
    /// Optional die-temperature watchdog observed every PIC interval.
    hotspot: Option<HotspotTracker>,
    /// Optional fault-injection seam (scenario harness): consulted at the
    /// sense point before each PIC invocation, the actuate point before
    /// each DVFS move, and once per GPM round for budget transients and
    /// controller liveness. `None` costs one branch per step.
    injection: Option<Box<dyn InjectionSeam + Send>>,
    /// Memo key shared by the probe and calibration-sweep caches: the exact
    /// `Debug` rendering of the chip's construction inputs.
    memo_key: String,
    /// Whether this coordinator's reference-power probe hit the memo cache
    /// (published once to the registry as a `memo.probe.*` counter).
    probe_cache_hit: bool,
    /// Whether this coordinator's calibration sweep hit the memo cache
    /// (`None` until a transducer calibration actually runs).
    calib_sweep_hit: Option<bool>,
    memo_published: bool,
    /// Calibration-memo process totals at the last publish, so repeated
    /// measurements add deltas, not running totals.
    cal_stats_baseline: (u64, u64),
    /// Recorder drop count at the last publish (delta semantics, like the
    /// memo baselines).
    dropped_baseline: u64,
    /// Provenance round counter for schemes without a GPM invocation
    /// ordinal (MaxBIPS, no-management); cumulative across measurements.
    prov_round: u64,
    /// Optional wall-clock self-profiler for the sense/decide/actuate
    /// phases. The coordinator only calls the seam — the implementation
    /// (and its clock) lives in the bench crate, and nothing it measures
    /// enters recorded events.
    profiler: Option<Box<dyn PhaseProfiler + Send>>,
}

impl Coordinator {
    /// Builds the chip, workload, and management stack for `cfg`.
    pub fn new(cfg: ExperimentConfig) -> Result<Self, ConfigError> {
        let assignment = Self::assignment(&cfg)?;
        let variation = match &cfg.variation {
            Some(v) => {
                if v.islands() != cfg.cmp.islands() {
                    return Err(ConfigError::VariationMismatch(format!(
                        "map covers {} islands, chip has {}",
                        v.islands(),
                        cfg.cmp.islands()
                    )));
                }
                v.clone()
            }
            None => VariationMap::uniform(cfg.cmp.islands()),
        };
        let chip = Chip::with_variation(cfg.cmp.clone(), &assignment, variation);
        let memo_key = format!(
            "{:?}|{:?}|{:?}",
            chip.config(),
            assignment,
            chip.variation()
        );
        let (reference_power, probe_cache_hit) =
            Self::probe_reference_power_memoized(&memo_key, &chip);
        let budget = cfg.budget_fraction * reference_power;
        let ranges = Self::island_ranges(&chip);
        let floor: Watts = ranges.iter().map(|r| r.floor).sum();
        if budget < floor {
            return Err(ConfigError::InfeasibleBudget(format!(
                "budget {budget} below chip idle floor {floor}"
            )));
        }

        let manager = match &cfg.scheme {
            ManagementScheme::Cpm(kind) => {
                let islands = cfg.cmp.islands();
                let policy: Box<dyn ProvisioningPolicy + Send> = match kind {
                    PolicyKind::Performance => Box::new(PerformanceAware::new()),
                    PolicyKind::Thermal(c) => Box::new(ThermalAware::new(
                        Box::new(PerformanceAware::new()),
                        c.clone(),
                        islands,
                    )),
                    PolicyKind::Variation => Box::new(VariationAware::new()),
                    PolicyKind::Energy { guarantee } => Box::new(EnergyAware::new(*guarantee)),
                    PolicyKind::Qos(classes) => {
                        if classes.len() != islands {
                            return Err(ConfigError::MixTopologyMismatch(format!(
                                "QoS classes cover {} islands, chip has {islands}",
                                classes.len()
                            )));
                        }
                        Box::new(QosAware::new(classes.clone()))
                    }
                };
                let gpm = GlobalPowerManager::new(budget, policy, ranges.clone());
                let pics = (0..islands)
                    .map(|i| {
                        let pic = PerIslandController::new(
                            IslandId(i),
                            cfg.cmp.dvfs.clone(),
                            ranges[i].ceiling,
                            cfg.pid_gains,
                            cfg.plant_gain,
                            cfg.sensor,
                        );
                        if cfg.adaptive_gain {
                            pic.with_adaptive_gain()
                        } else {
                            pic
                        }
                    })
                    .collect();
                Manager::Cpm { gpm, pics }
            }
            ManagementScheme::MaxBips => Manager::MaxBips {
                mb: MaxBips::new(cfg.cmp.dvfs.clone()),
                static_table: None,
            },
            ManagementScheme::NoManagement => Manager::None,
        };

        let islands = cfg.cmp.islands();
        Ok(Self {
            cfg,
            chip,
            manager,
            reference_power,
            alloc: vec![budget / islands as f64; islands],
            calibrated: false,
            recorder: Recorder::disabled(),
            registry: Registry::new(),
            hotspot: None,
            injection: None,
            memo_key,
            probe_cache_hit,
            calib_sweep_hit: None,
            memo_published: false,
            cal_stats_baseline: cpm_sim::calibration::cache_stats(),
            dropped_baseline: 0,
            prov_round: 0,
            profiler: None,
        })
    }

    /// Attaches a flight-recorder handle and threads it through the whole
    /// management stack: the GPM (and its policy), every PIC, and the
    /// hotspot tracker if one is attached. The coordinator advances the
    /// recorder's ambient simulated clock as the chip steps, and emits
    /// `WorkerSpan` events for the calibrate/settle/measure phases.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        if let Manager::Cpm { gpm, pics } = &mut self.manager {
            gpm.set_recorder(recorder.clone());
            for pic in pics.iter_mut() {
                pic.set_recorder(recorder.clone());
            }
        }
        if let Some(h) = &mut self.hotspot {
            h.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Shares a metrics registry with the coordinator (replacing its
    /// private one). Run-level instruments — GPM/PIC invocation counts,
    /// thermal statistics — are published here after each measurement.
    pub fn set_registry(&mut self, registry: Registry) {
        self.registry = registry;
    }

    /// The coordinator's metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Attaches a die-temperature watchdog: every PIC interval the chip's
    /// node temperatures are checked against `threshold`, and each hotspot
    /// onset emits a `ThermalViolation` event when a recorder is attached.
    pub fn attach_hotspot_tracker(&mut self, threshold: Celsius) {
        let mut tracker = HotspotTracker::new(self.cfg.cmp.cores, threshold);
        tracker.set_recorder(self.recorder.clone());
        self.hotspot = Some(tracker);
    }

    /// The attached die-temperature watchdog, if any.
    pub fn hotspot_tracker(&self) -> Option<&HotspotTracker> {
        self.hotspot.as_ref()
    }

    /// Attaches a fault-injection seam. During measurement the seam
    /// filters every island's sensed `(utilization, power)` pair before
    /// its PIC sees it, every requested DVFS move before it is applied,
    /// and is polled each GPM round for budget transients (clamped to the
    /// chip's idle floor) and per-island controller failure — a failed
    /// island's PIC is skipped entirely (no sensing, control, or rezero)
    /// and the GPM fails over around its uncontrolled draw. Calibration
    /// and settle-in run un-faulted: scenarios perturb the measured
    /// story, not the characterization that precedes it.
    pub fn set_injection(&mut self, seam: Box<dyn InjectionSeam + Send>) {
        self.injection = Some(seam);
    }

    /// Detaches the fault-injection seam, restoring un-faulted stepping.
    pub fn clear_injection(&mut self) {
        self.injection = None;
    }

    /// Attaches a control-phase wall-clock profiler: during measurement
    /// the coordinator brackets chip stepping/sensing (`Sense`), tier-1
    /// provisioning (`Decide`), and the PIC invoke/DVFS loop (`Actuate`)
    /// with `enter`/`exit` calls. Profiler output never enters recorded
    /// events or byte-diffed artifacts — see [`cpm_obs::PhaseProfiler`].
    pub fn set_profiler(&mut self, profiler: Box<dyn PhaseProfiler + Send>) {
        self.profiler = Some(profiler);
    }

    /// Memoized front end for the reference-power probe. Returns the probe
    /// value and whether it came from the cache.
    fn probe_reference_power_memoized(key: &str, chip: &Chip) -> (Watts, bool) {
        let memo = PROBE_MEMO.get_or_init(Default::default);
        if let Some(&w) = lock_recover(memo).get(key) {
            PROBE_HITS.fetch_add(1, Ordering::Relaxed);
            return (w, true);
        }
        PROBE_MISSES.fetch_add(1, Ordering::Relaxed);
        let w = Self::probe_reference_power_uncached(chip);
        lock_recover(memo).insert(key.to_owned(), w);
        (w, false)
    }

    /// Cumulative (hits, misses) of the reference-power probe memo cache
    /// for this process.
    pub fn probe_cache_stats() -> (u64, u64) {
        (
            PROBE_HITS.load(Ordering::Relaxed),
            PROBE_MISSES.load(Ordering::Relaxed),
        )
    }

    /// Measures the chip's *required* power: a deterministic unmanaged
    /// probe on a clone of the freshly built chip. The probe first warms
    /// the die past the thermal time constant (leakage is temperature-
    /// sensitive, so a cold-die reading would understate the requirement),
    /// then averages 8 GPM intervals at the top operating point. This is
    /// the basis the paper expresses budgets in — the unmanaged chip reads
    /// ≈ 100 %.
    ///
    /// Public as the memo-free reference path so tests can verify the memo
    /// cache returns bit-identical values.
    pub fn probe_reference_power_uncached(chip: &Chip) -> Watts {
        let mut probe = chip.clone();
        let per_gpm = probe.config().pics_per_gpm();
        let mut snap = ChipSnapshot::empty();
        for _ in 0..20 * per_gpm {
            probe.step_pic_into(&mut snap); // thermal warm-up, discarded
        }
        let steps = 8 * per_gpm;
        let mut total = 0.0f64;
        for _ in 0..steps {
            probe.step_pic_into(&mut snap);
            total += snap.chip_power.value();
        }
        Watts::new(total / steps as f64)
    }

    fn assignment(cfg: &ExperimentConfig) -> Result<WorkloadAssignment, ConfigError> {
        if let Some(a) = &cfg.assignment {
            if a.cores() != cfg.cmp.cores || a.cores_per_island() != cfg.cmp.cores_per_island {
                return Err(ConfigError::MixTopologyMismatch(format!(
                    "assignment covers {} cores x {} per island, chip has {} x {}",
                    a.cores(),
                    a.cores_per_island(),
                    cfg.cmp.cores,
                    cfg.cmp.cores_per_island
                )));
            }
            return Ok(a.clone());
        }
        let expected_width = match cfg.mix {
            Mix::Mix1 | Mix::Mix2 => 2,
            Mix::Mix3 => 4,
            Mix::Thermal => 1,
        };
        if cfg.cmp.cores_per_island != expected_width {
            return Err(ConfigError::MixTopologyMismatch(format!(
                "{:?} requires {} cores/island, chip has {}",
                cfg.mix, expected_width, cfg.cmp.cores_per_island
            )));
        }
        match cfg.mix {
            Mix::Mix1 | Mix::Mix2 | Mix::Thermal if cfg.cmp.cores != 8 => {
                Err(ConfigError::MixTopologyMismatch(format!(
                    "{:?} requires 8 cores, chip has {}",
                    cfg.mix, cfg.cmp.cores
                )))
            }
            Mix::Mix3 if cfg.cmp.cores != 16 && cfg.cmp.cores != 32 => {
                Err(ConfigError::MixTopologyMismatch(format!(
                    "Mix3 requires 16/32 cores, chip has {}",
                    cfg.cmp.cores
                )))
            }
            mix => Ok(WorkloadAssignment::paper_mix(mix, cfg.cmp.cores)),
        }
    }

    /// Physical allocation range per island: floor = idle power at the
    /// lowest operating point; ceiling = the max-power basis share.
    fn island_ranges(chip: &Chip) -> Vec<IslandRange> {
        let cfg = chip.config();
        let min_op = cfg.dvfs.min_point();
        (0..cfg.islands())
            .map(|i| {
                let mult = chip.variation().multiplier(IslandId(i));
                let idle_core = cfg.power.total_power(
                    min_op,
                    Ratio::ZERO,
                    cpm_power::LeakageModel::HOT_REFERENCE,
                    mult,
                );
                let max_core = cfg.power.max_power(&cfg.dvfs, mult);
                IslandRange {
                    floor: idle_core * cfg.cores_per_island as f64,
                    ceiling: max_core * cfg.cores_per_island as f64,
                }
            })
            .collect()
    }

    /// The chip under management (read access for experiments).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The chip budget in watts.
    pub fn budget(&self) -> Watts {
        self.cfg.budget_fraction * self.reference_power
    }

    /// The measured unmanaged-power reference (the percent basis).
    pub fn reference_power(&self) -> Watts {
        self.reference_power
    }

    /// Changes the chip budget at runtime (e.g. a rack-level manager
    /// re-provisioned this socket). Takes effect at the next GPM
    /// invocation. Panics if the new budget falls below the chip's idle
    /// floor.
    pub fn set_budget_fraction(&mut self, fraction: Ratio) {
        assert!(fraction.value() > 0.0, "budget fraction must be positive");
        self.cfg.budget_fraction = fraction;
        if let Manager::Cpm { gpm, .. } = &mut self.manager {
            gpm.set_budget(fraction * self.reference_power);
        }
    }

    /// Transducer calibration sweep: visit every DVFS level for two PIC
    /// intervals and feed every island's (capacity-utilization, power)
    /// pair to its transducer. No-op for oracle sensing or non-CPM
    /// schemes. Runs automatically on the first measurement call.
    pub fn calibrate(&mut self) {
        if self.calibrated {
            return;
        }
        self.calibrated = true;
        let Manager::Cpm { pics, .. } = &mut self.manager else {
            return;
        };
        if self.cfg.sensor == SensorMode::Oracle {
            return;
        }
        // The sweep below is open loop (fixed DVFS schedule, fresh chip),
        // so its chip trajectory and observation rows are a pure function
        // of the construction key. Replay a cached sweep when one exists.
        let memo = CALIB_SWEEP_MEMO.get_or_init(Default::default);
        let cached = lock_recover(memo).get(&self.memo_key).cloned();
        if let Some(sweep) = cached {
            CALIB_SWEEP_HITS.fetch_add(1, Ordering::Relaxed);
            self.calib_sweep_hit = Some(true);
            for row in &sweep.rows {
                for (pic, &(u, p)) in pics.iter_mut().zip(row) {
                    pic.observe_calibration(u, p);
                }
            }
            for pic in pics.iter_mut() {
                pic.reset();
            }
            self.chip = sweep.chip;
            return;
        }
        CALIB_SWEEP_MISSES.fetch_add(1, Ordering::Relaxed);
        self.calib_sweep_hit = Some(false);
        let mut rows: Vec<Vec<(Ratio, Watts)>> = Vec::new();
        let levels = self.cfg.cmp.dvfs.len();
        // Warm the die to operating temperature first: leakage is strongly
        // temperature-dependent, so a cold-die calibration would bias the
        // transducer low and every island would drift above its target.
        // ~20 GPM intervals at an upper-mid operating point approaches the
        // thermal steady state the managed run will live at.
        let warm_level = (3 * levels) / 4;
        let mut snap = ChipSnapshot::empty();
        for i in 0..self.cfg.cmp.islands() {
            self.chip.set_island_dvfs(IslandId(i), warm_level);
        }
        for _ in 0..20 * self.cfg.cmp.pics_per_gpm() {
            self.chip.step_pic_into(&mut snap);
        }
        // Three sweeps over all levels: multiple phase states per level
        // average the workload noise out of the fit.
        for round in 0..3 {
            for step in 0..levels {
                let level = if round % 2 == 0 {
                    levels - 1 - step
                } else {
                    step
                };
                for i in 0..self.cfg.cmp.islands() {
                    self.chip.set_island_dvfs(IslandId(i), level);
                }
                // First interval absorbs the transition freeze; observe the
                // two following (clean) ones.
                self.chip.step_pic_into(&mut snap);
                for _ in 0..2 {
                    self.chip.step_pic_into(&mut snap);
                    for (pic, isl) in pics.iter_mut().zip(&snap.islands) {
                        pic.observe_calibration(isl.capacity_utilization, isl.power);
                    }
                    rows.push(
                        snap.islands
                            .iter()
                            .map(|isl| (isl.capacity_utilization, isl.power))
                            .collect(),
                    );
                }
            }
        }
        // Return to the top point and give every PIC a clean start.
        for i in 0..self.cfg.cmp.islands() {
            self.chip.set_island_dvfs(IslandId(i), levels - 1);
        }
        self.chip.step_pic_into(&mut snap);
        for pic in pics.iter_mut() {
            pic.reset();
        }
        lock_recover(memo).insert(
            self.memo_key.clone(),
            CalibSweep {
                chip: self.chip.clone(),
                rows,
            },
        );
    }

    /// Cumulative (hits, misses) of the calibration-sweep memo cache for
    /// this process.
    pub fn calib_sweep_cache_stats() -> (u64, u64) {
        (
            CALIB_SWEEP_HITS.load(Ordering::Relaxed),
            CALIB_SWEEP_MISSES.load(Ordering::Relaxed),
        )
    }

    /// Settle-in: one unrecorded GPM interval during which the PICs pull
    /// the freshly booted (top-V/F) chip down to the initial equal-share
    /// allocation, so the measured traces start from controlled state the
    /// way the paper's plots do.
    fn settle_in(&mut self) {
        let Manager::Cpm { gpm, pics } = &mut self.manager else {
            return;
        };
        let alloc = gpm.initial_allocation();
        for (pic, &a) in pics.iter_mut().zip(&alloc) {
            pic.set_target(a);
        }
        let mut snap = ChipSnapshot::empty();
        for _ in 0..self.cfg.cmp.pics_per_gpm() {
            self.chip.step_pic_into(&mut snap);
            for (i, pic) in pics.iter_mut().enumerate() {
                let isl = &snap.islands[i];
                let idx = pic.invoke(isl.capacity_utilization, isl.power);
                self.chip.set_island_dvfs(IslandId(i), idx);
            }
        }
    }

    /// Runs `n` GPM intervals under the configured scheme and records the
    /// outcome (calibrating first if needed).
    pub fn run_for_gpm_intervals(&mut self, n: usize) -> Outcome {
        if !self.calibrated {
            // Calibration and settle-in chatter is not part of the measured
            // story: blank the recorder, then log the phases as spans.
            self.recorder.pause();
            let t0 = self.chip.time().value();
            self.calibrate();
            let t1 = self.chip.time().value();
            self.settle_in();
            let t2 = self.chip.time().value();
            self.recorder.resume();
            self.recorder.set_time(t2);
            self.recorder.record(EventPayload::WorkerSpan {
                worker: 0,
                label: "calibrate",
                start_s: t0,
                end_s: t1,
            });
            self.recorder.record(EventPayload::WorkerSpan {
                worker: 0,
                label: "settle",
                start_s: t1,
                end_s: t2,
            });
        }
        let measure_start = self.chip.time().value();
        self.recorder.set_time(measure_start);
        // Invocation counts already published by earlier measurements on
        // this coordinator must not be re-added.
        let (gpm_before, pic_before) = match &self.manager {
            Manager::Cpm { gpm, pics } => (
                gpm.invocations(),
                pics.iter().map(|p| p.invocations()).sum::<u64>(),
            ),
            _ => (0, 0),
        };
        let islands = self.cfg.cmp.islands();
        let pics_per_gpm = self.cfg.cmp.pics_per_gpm();
        let budget = self.budget();
        let reference = self.reference_power;
        let pct = |w: Watts| w.value() / reference.value() * 100.0;

        let mut out = Outcome {
            budget,
            max_chip_power: self.chip.max_power(),
            reference_power: reference,
            chip_power_percent: TimeSeries::new(),
            island_actual_percent: vec![TimeSeries::new(); islands],
            island_target_percent: vec![TimeSeries::new(); islands],
            island_dvfs_index: vec![TimeSeries::new(); islands],
            chip_bips: TimeSeries::new(),
            peak_temperature: TimeSeries::new(),
            total_instructions: 0.0,
            measured_time: Seconds::ZERO,
            violations: None,
            transducer_r2: vec![None; islands],
            island_energy: vec![EnergyAccount::new(); islands],
            pics_per_gpm,
        };

        // Rolling per-GPM-interval accumulators for feedback.
        let mut acc_power = vec![Watts::ZERO; islands];
        let mut acc_instr = vec![0.0f64; islands];
        let mut acc_util = vec![0.0f64; islands];
        let mut acc_cap_util = vec![0.0f64; islands];
        let mut acc_peak_temp = vec![0.0f64; islands];
        let mut have_feedback = false;
        // Per-round controller-liveness flags from the injection seam
        // (all false when no seam is attached).
        let mut island_failed = vec![false; islands];
        // One snapshot buffer for the whole measurement: the per-step hot
        // loop below performs no heap allocation.
        let mut snap = ChipSnapshot::empty();
        // Provenance events (GpmRound roots, Actuation leaves) read chip
        // state the un-instrumented loop never touches, so they are gated
        // on an attached recorder rather than on `Recorder::record`'s
        // internal branch.
        let record_provenance = self.recorder.is_enabled();

        for _gpm_round in 0..n {
            // ---- Injection: budget transients + controller liveness ----
            let now = self.chip.time();
            let mut round_budget = budget;
            if let Some(seam) = &mut self.injection {
                let scale = seam.budget_scale(now);
                if scale != 1.0 {
                    let mut scaled = Watts::new(budget.value() * scale);
                    if let Manager::Cpm { gpm, .. } = &self.manager {
                        // A transient below the idle floor is physically
                        // unmeetable; clamp rather than panic mid-run.
                        if scaled < gpm.floor() {
                            scaled = gpm.floor();
                        }
                    }
                    round_budget = scaled;
                }
                for (i, f) in island_failed.iter_mut().enumerate() {
                    *f = seam.controller_failed(now, IslandId(i));
                }
                if let Manager::Cpm { gpm, .. } = &mut self.manager {
                    if gpm.budget() != round_budget {
                        gpm.set_budget(round_budget);
                    }
                    for (i, &f) in island_failed.iter().enumerate() {
                        gpm.set_island_failed(IslandId(i), f);
                    }
                }
            }

            // ---- Provenance root: this round's cause-tree anchor ----
            // The round ordinal matches `GpmAllocation::round` (the GPM
            // increments its invocation count inside `provision`); the
            // feedback-free first round is round 0, like the equal split.
            let round_no = match &self.manager {
                Manager::Cpm { gpm, .. } if have_feedback => gpm.invocations() + 1,
                Manager::Cpm { .. } => 0,
                _ => self.prov_round,
            };
            if record_provenance {
                // `acc_power` still holds the previous interval's sums at
                // this point — the mean chip draw the GPM is reacting to.
                let actual_w = if have_feedback {
                    acc_power.iter().map(|w| w.value()).sum::<f64>() / pics_per_gpm as f64
                } else {
                    0.0
                };
                self.recorder.record(EventPayload::GpmRound {
                    span: SpanId::gpm_round(round_no).raw(),
                    round: round_no,
                    budget_w: round_budget.value(),
                    actual_w,
                    islands: islands as u32,
                });
            }

            // ---- Tier 1: global provisioning ----
            if let Some(p) = &mut self.profiler {
                p.enter(ControlPhase::Decide);
            }
            match &mut self.manager {
                Manager::Cpm { gpm, pics } => {
                    if have_feedback {
                        // The coarse per-island meter read the GPM relies
                        // on also re-zeroes each PIC's fast transducer
                        // (skipped for islands whose controller is dead —
                        // there is nothing alive to trim).
                        for (i, pic) in pics.iter_mut().enumerate() {
                            if island_failed[i] {
                                continue;
                            }
                            let k = pics_per_gpm as f64;
                            pic.rezero(Ratio::new(acc_cap_util[i] / k), acc_power[i] / k);
                        }
                        let feedback: Vec<IslandFeedback> = (0..islands)
                            .map(|i| {
                                let k = pics_per_gpm as f64;
                                let mean_power = acc_power[i] / k;
                                let dt = self.cfg.cmp.gpm_interval;
                                IslandFeedback {
                                    island: IslandId(i),
                                    allocated: self.alloc[i],
                                    actual_power: mean_power,
                                    bips: acc_instr[i] / dt.value() / 1.0e9,
                                    utilization: Ratio::new(acc_util[i] / k),
                                    epi: (acc_instr[i] > 0.0)
                                        .then(|| (mean_power * dt) / acc_instr[i]),
                                    peak_temperature: acc_peak_temp[i],
                                }
                            })
                            .collect();
                        self.alloc = gpm.provision(&feedback);
                    } else {
                        self.alloc = gpm.initial_allocation();
                    }
                    for (pic, &a) in pics.iter_mut().zip(&self.alloc) {
                        pic.set_target(a);
                        pic.begin_round(round_no);
                    }
                }
                Manager::MaxBips { mb, static_table } => {
                    if have_feedback {
                        if static_table.is_none() {
                            // One-time characterization pass: build the
                            // static table from the first full interval.
                            *static_table = Some(
                                (0..islands)
                                    .map(|i| {
                                        let idx = self.chip.island_dvfs(IslandId(i));
                                        // Characterized leakage at the
                                        // island's voltage (hot reference).
                                        let v = self.cfg.cmp.dvfs.point(idx).voltage;
                                        let static_power = self.cfg.cmp.power.leakage.power(
                                            v,
                                            cpm_power::LeakageModel::HOT_REFERENCE,
                                            self.chip.variation().multiplier(IslandId(i)),
                                        ) * self.cfg.cmp.cores_per_island as f64;
                                        MaxBipsObservation {
                                            power: acc_power[i] / pics_per_gpm as f64,
                                            static_power,
                                            bips: acc_instr[i]
                                                / self.cfg.cmp.gpm_interval.value()
                                                / 1.0e9,
                                            dvfs_index: idx,
                                        }
                                    })
                                    .collect(),
                            );
                        }
                        let combo = mb.choose(round_budget, static_table.as_ref().unwrap());
                        for (i, &requested) in combo.iter().enumerate() {
                            let lvl = match &mut self.injection {
                                Some(seam) => {
                                    let cur = self.chip.island_dvfs(IslandId(i));
                                    seam.filter_actuate(now, IslandId(i), requested, cur)
                                }
                                None => requested,
                            };
                            if record_provenance {
                                // MaxBIPS actuates straight from the round
                                // decision — no PIC in between — so the
                                // actuation parents on the round span.
                                let from = self.chip.island_dvfs(IslandId(i)) as u32;
                                self.recorder.record(EventPayload::Actuation {
                                    span: SpanId::actuation(round_no, i as u32, 0).raw(),
                                    parent: SpanId::gpm_round(round_no).raw(),
                                    island: i as u32,
                                    from_dvfs: from,
                                    requested_dvfs: requested as u32,
                                    to_dvfs: lvl as u32,
                                    granted: lvl == requested,
                                });
                            }
                            self.chip.set_island_dvfs(IslandId(i), lvl);
                        }
                    }
                    // Allocation bookkeeping for reporting: equal split.
                    self.alloc = vec![round_budget / islands as f64; islands];
                }
                Manager::None => {}
            }
            if let Some(p) = &mut self.profiler {
                p.exit(ControlPhase::Decide);
            }

            acc_power.fill(Watts::ZERO);
            acc_instr.fill(0.0);
            acc_util.fill(0.0);
            acc_cap_util.fill(0.0);
            acc_peak_temp.fill(0.0);

            // ---- Tier 2: local control, one PIC interval at a time ----
            for k in 0..pics_per_gpm {
                if let Some(p) = &mut self.profiler {
                    p.enter(ControlPhase::Sense);
                }
                self.chip.step_pic_into(&mut snap);
                let t = snap.time;
                self.recorder.set_time(t.value());
                if let Some(h) = &mut self.hotspot {
                    h.observe(&snap.temperatures, snap.dt);
                }
                for (i, isl) in snap.islands.iter().enumerate() {
                    acc_power[i] += isl.power;
                    acc_instr[i] += isl.instructions;
                    acc_util[i] += isl.utilization.value();
                    acc_cap_util[i] += isl.capacity_utilization.value();
                    out.island_actual_percent[i].push(t, pct(isl.power));
                    out.island_target_percent[i].push(t, pct(self.alloc[i]));
                    out.island_dvfs_index[i].push(t, isl.dvfs_index as f64);
                    out.island_energy[i].record_interval(isl.power, snap.dt, isl.instructions);
                }
                for (i, peak) in acc_peak_temp.iter_mut().enumerate() {
                    // Peak temperature across the island's cores.
                    let island_cores = (i * self.cfg.cmp.cores_per_island)
                        ..((i + 1) * self.cfg.cmp.cores_per_island);
                    let island_peak = island_cores
                        .map(|c| snap.temperatures[c].value())
                        .fold(f64::NEG_INFINITY, f64::max);
                    *peak = peak.max(island_peak);
                }
                out.chip_power_percent.push(t, pct(snap.chip_power));
                out.chip_bips.push(t, snap.chip_bips());
                out.peak_temperature.push(
                    t,
                    snap.temperatures
                        .iter()
                        .map(|c| c.value())
                        .fold(f64::NEG_INFINITY, f64::max),
                );
                out.total_instructions += snap.instructions;
                out.measured_time += snap.dt;
                if let Some(p) = &mut self.profiler {
                    p.exit(ControlPhase::Sense);
                    p.enter(ControlPhase::Actuate);
                }

                if let Manager::Cpm { pics, .. } = &mut self.manager {
                    match &mut self.injection {
                        None => {
                            for (i, pic) in pics.iter_mut().enumerate() {
                                let isl = &snap.islands[i];
                                let idx = pic.invoke(isl.capacity_utilization, isl.power);
                                if record_provenance {
                                    // Un-faulted platform: the knob honors
                                    // the request verbatim.
                                    let from = self.chip.island_dvfs(IslandId(i)) as u32;
                                    self.recorder.record(EventPayload::Actuation {
                                        span: SpanId::actuation(round_no, i as u32, k as u32).raw(),
                                        parent: SpanId::pic_decision(round_no, i as u32, k as u32)
                                            .raw(),
                                        island: i as u32,
                                        from_dvfs: from,
                                        requested_dvfs: idx as u32,
                                        to_dvfs: idx as u32,
                                        granted: true,
                                    });
                                }
                                self.chip.set_island_dvfs(IslandId(i), idx);
                            }
                        }
                        Some(seam) => {
                            for (i, pic) in pics.iter_mut().enumerate() {
                                let id = IslandId(i);
                                if seam.controller_failed(t, id) {
                                    continue; // dead controller: knob holds
                                }
                                let isl = &snap.islands[i];
                                let (u, p) =
                                    seam.filter_sense(t, id, isl.capacity_utilization, isl.power);
                                let requested = pic.invoke(u, p);
                                let current = self.chip.island_dvfs(id);
                                let idx = seam.filter_actuate(t, id, requested, current);
                                if record_provenance {
                                    self.recorder.record(EventPayload::Actuation {
                                        span: SpanId::actuation(round_no, i as u32, k as u32).raw(),
                                        parent: SpanId::pic_decision(round_no, i as u32, k as u32)
                                            .raw(),
                                        island: i as u32,
                                        from_dvfs: current as u32,
                                        requested_dvfs: requested as u32,
                                        to_dvfs: idx as u32,
                                        granted: idx == requested,
                                    });
                                }
                                self.chip.set_island_dvfs(id, idx);
                            }
                        }
                    }
                }
                if let Some(p) = &mut self.profiler {
                    p.exit(ControlPhase::Actuate);
                }
            }
            have_feedback = true;
            self.prov_round += 1;
        }

        // Leave the GPM in its nominal state: an injection-scaled budget
        // or failover flag must not leak into a later measurement.
        if self.injection.is_some() {
            if let Manager::Cpm { gpm, .. } = &mut self.manager {
                gpm.set_budget(budget);
                for i in 0..islands {
                    gpm.set_island_failed(IslandId(i), false);
                }
            }
        }

        if let Manager::Cpm { pics, .. } = &self.manager {
            for (i, pic) in pics.iter().enumerate() {
                out.transducer_r2[i] = pic.transducer_r_squared();
            }
        }
        // Violation stats from thermal-aware runs are carried by the policy;
        // surfaced via `thermal_stats`.
        out.violations = self.thermal_stats();
        let measure_end = self.chip.time().value();
        self.recorder.set_time(measure_end);
        self.recorder.record(EventPayload::WorkerSpan {
            worker: 0,
            label: "measure",
            start_s: measure_start,
            end_s: measure_end,
        });
        self.publish_metrics(&out, n as u64, gpm_before, pic_before);
        out
    }

    /// Publishes run-level instruments to the registry (called once per
    /// measurement, never on the hot path).
    fn publish_metrics(&mut self, out: &Outcome, rounds: u64, gpm_before: u64, pic_before: u64) {
        // Memoization instruments: this coordinator's probe outcome (once),
        // plus calibration-memo activity since the last publish.
        if !self.memo_published {
            self.memo_published = true;
            let (h, m) = if self.probe_cache_hit { (1, 0) } else { (0, 1) };
            self.registry.counter("memo.probe.hits").add(h);
            self.registry.counter("memo.probe.misses").add(m);
            if let Some(hit) = self.calib_sweep_hit {
                let (h, m) = if hit { (1, 0) } else { (0, 1) };
                self.registry.counter("memo.calib_sweep.hits").add(h);
                self.registry.counter("memo.calib_sweep.misses").add(m);
            }
        }
        let (cal_hits, cal_misses) = cpm_sim::calibration::cache_stats();
        let (base_hits, base_misses) = self.cal_stats_baseline;
        self.cal_stats_baseline = (cal_hits, cal_misses);
        self.registry
            .counter("memo.calibration.hits")
            .add(cal_hits.saturating_sub(base_hits));
        self.registry
            .counter("memo.calibration.misses")
            .add(cal_misses.saturating_sub(base_misses));
        // Recorder overflow surfaces as a counter so truncated histories
        // are visible in every metrics snapshot (delta since last publish).
        let dropped = self.recorder.dropped();
        self.registry
            .counter("recorder.dropped_events")
            .add(dropped.saturating_sub(self.dropped_baseline));
        self.dropped_baseline = dropped;
        let r = &self.registry;
        r.counter("coordinator.gpm_rounds").add(rounds);
        if let Manager::Cpm { gpm, pics } = &self.manager {
            r.counter("gpm.invocations")
                .add(gpm.invocations() - gpm_before);
            r.counter("pic.invocations")
                .add(pics.iter().map(|p| p.invocations()).sum::<u64>() - pic_before);
        }
        r.gauge("chip.budget_percent").set(out.budget_percent());
        r.gauge("chip.mean_power_percent")
            .set(out.mean_chip_power_percent());
        if let Some(v) = &out.violations {
            r.counter("thermal.violated_intervals")
                .add(v.violated_intervals);
        }
        if let Some(h) = &self.hotspot {
            r.counter("thermal.hotspot_events").add(h.events() as u64);
            r.gauge("thermal.hotspot_violation_fraction")
                .set(h.violation_fraction());
        }
        let err = out.chip_tracking_error();
        r.gauge("tracking.chip_mean_abs_error_percent")
            .set(err.mean_abs_error_percent);
        r.counter("tracking.skipped_samples")
            .add(err.skipped_samples as u64);
    }

    /// Violation statistics when running the thermal-aware policy.
    pub fn thermal_stats(&self) -> Option<ViolationStats> {
        match &self.manager {
            Manager::Cpm { gpm, .. } => gpm.policy_violation_stats().cloned(),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("cores", &self.cfg.cmp.cores)
            .field("islands", &self.cfg.cmp.islands())
            .field("budget", &self.budget())
            .finish()
    }
}

/// Convenience: runs `cfg` for `n` GPM intervals and also its
/// no-management twin, returning `(managed, baseline)` outcomes for
/// degradation reporting. Both runs share seeds, so phase sequences align.
pub fn run_with_baseline(
    cfg: ExperimentConfig,
    n: usize,
) -> Result<(Outcome, Outcome), ConfigError> {
    let baseline_cfg = cfg.clone().with_scheme(ManagementScheme::NoManagement);
    let mut managed = Coordinator::new(cfg)?;
    let mut baseline = Coordinator::new(baseline_cfg)?;
    Ok((
        managed.run_for_gpm_intervals(n),
        baseline.run_for_gpm_intervals(n),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: ExperimentConfig, n: usize) -> Outcome {
        Coordinator::new(cfg)
            .expect("valid config")
            .run_for_gpm_intervals(n)
    }

    #[test]
    fn paper_default_tracks_the_chip_budget() {
        let out = quick(ExperimentConfig::paper_default(), 20);
        let track = out.chip_tracking_error();
        // The paper bounds overshoot within ~4 % of target; allow slack for
        // the synthetic substrate.
        assert!(
            track.max_overshoot_percent < 10.0,
            "overshoot {}",
            track.max_overshoot_percent
        );
        // Long-run mean should sit near the budget (within 10 % of target).
        let mean = out.mean_chip_power_percent();
        assert!(
            (mean - out.budget_percent()).abs() < 0.10 * out.budget_percent(),
            "mean {mean} vs budget {}",
            out.budget_percent()
        );
    }

    #[test]
    fn island_allocations_sum_to_budget() {
        let out = quick(ExperimentConfig::paper_default(), 10);
        // At each recorded instant the island targets sum to the budget.
        let n = out.island_target_percent[0].len();
        for k in 0..n {
            let total: f64 = out
                .island_target_percent
                .iter()
                .map(|ts| ts.samples()[k].value)
                .sum();
            assert!(
                (total - out.budget_percent()).abs() < 0.5,
                "t={k}: targets sum to {total}"
            );
        }
    }

    #[test]
    fn no_management_runs_flat_out() {
        let out = quick(
            ExperimentConfig::paper_default().with_scheme(ManagementScheme::NoManagement),
            10,
        );
        // Unmanaged power exceeds an 80 % budget (that is why management
        // is needed).
        assert!(out.mean_chip_power_percent() > out.budget_percent());
    }

    #[test]
    fn cpm_degradation_is_modest_at_80_percent() {
        let (managed, baseline) = run_with_baseline(ExperimentConfig::paper_default(), 20).unwrap();
        let deg = managed.degradation_vs(&baseline);
        assert!(deg >= 0.0, "managed cannot beat full speed: {deg}");
        assert!(deg < 15.0, "degradation {deg}% too large for an 80% budget");
    }

    #[test]
    fn maxbips_undershoots_the_budget() {
        let out = quick(
            ExperimentConfig::paper_default().with_scheme(ManagementScheme::MaxBips),
            20,
        );
        assert!(
            out.mean_chip_power_percent() <= out.budget_percent() + 1.0,
            "MaxBIPS mean {} must not exceed budget {}",
            out.mean_chip_power_percent(),
            out.budget_percent()
        );
    }

    #[test]
    fn infeasible_budget_is_a_config_error() {
        let cfg = ExperimentConfig::paper_default().with_budget_percent(1.0);
        assert!(matches!(
            Coordinator::new(cfg),
            Err(ConfigError::InfeasibleBudget(_))
        ));
    }

    #[test]
    fn mix_topology_mismatch_is_a_config_error() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.cmp = CmpConfig::with_topology(16, 4);
        // Mix1 on a 16-core chip.
        assert!(matches!(
            Coordinator::new(cfg),
            Err(ConfigError::MixTopologyMismatch(_))
        ));
    }

    #[test]
    fn oracle_sensor_skips_calibration_but_still_tracks() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.sensor = SensorMode::Oracle;
        let out = quick(cfg, 15);
        let mean = out.mean_chip_power_percent();
        assert!((mean - out.budget_percent()).abs() < 0.10 * out.budget_percent());
        assert!(out.transducer_r2.iter().all(|r| r.is_none()));
    }

    #[test]
    fn transducer_calibration_quality_matches_fig6() {
        let out = quick(ExperimentConfig::paper_default(), 10);
        for (i, r2) in out.transducer_r2.iter().enumerate() {
            let r2 = r2.expect("transducer calibrated");
            assert!(r2 > 0.85, "island {i} transducer R² = {r2}");
        }
    }

    #[test]
    fn determinism_same_config_same_outcome() {
        let a = quick(ExperimentConfig::paper_default(), 5);
        let b = quick(ExperimentConfig::paper_default(), 5);
        assert_eq!(a.total_instructions, b.total_instructions);
        assert_eq!(
            a.chip_power_percent.samples().last().unwrap().value,
            b.chip_power_percent.samples().last().unwrap().value
        );
    }
}
