//! The Per-Island Controller (PIC): closed-loop power capping via DVFS.
//!
//! Every `T_local` (0.5 ms) the PIC:
//!
//! 1. **senses** island power — not directly measurable, so a calibrated
//!    linear transducer converts observed capacity-utilization into watts
//!    (§II-D "Sensor/Transducer"); an *oracle* mode that reads true power
//!    exists for ablation,
//! 2. computes the error against the GPM-provisioned target,
//! 3. runs the PID law (Eq. 7) in the *normalized* domain the paper's
//!    system model is identified in — power as a fraction of the island's
//!    maximum, frequency as a fraction of the DVFS span — where the plant
//!    is `p(t+1) = p(t) + a·d(t)` with `a ≈ 0.79`,
//! 4. **actuates**: converts the control output into a frequency move
//!    through the plant gain and quantizes onto the discrete V/F table.
//!
//! The controller carries its continuous frequency state across
//! invocations so quantization error does not accumulate.
//!
//! **Adaptive gain** (optional): §II-D notes "the term aᵢ may vary at
//! runtime for different systems and different workloads" and proves the
//! loop stays stable for perturbations `0 < g < 2.1`. With
//! [`PerIslandController::with_adaptive_gain`] the PIC refines its plant
//! gain online from observed (Δf, ΔP) pairs, clamped to a band well inside
//! the guarantee, so the loop keeps its designed dynamics as workloads
//! shift the true gain.

use cpm_control::{Pid, PidGains};
use cpm_obs::{EventPayload, Recorder, SpanId};
use cpm_power::dvfs::DvfsTable;
use cpm_power::UtilizationPowerTransducer;
use cpm_units::{IslandId, Ratio, Watts};

/// How the PIC senses island power.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PicSensor {
    /// Through the calibrated utilization→power model (the paper's design).
    Transducer,
    /// Directly from the true power (physically unrealizable; ablation
    /// reference).
    Oracle,
}

/// A per-island PID power controller.
#[derive(Debug, Clone)]
pub struct PerIslandController {
    island: IslandId,
    pid: Pid,
    sensor: PicSensor,
    transducer: UtilizationPowerTransducer,
    table: DvfsTable,
    /// Normalization basis: the island's maximum power draw.
    island_max_power: Watts,
    /// Identified plant gain `a` (normalized ΔP per normalized Δf).
    plant_gain: f64,
    /// The design-time gain (adaptation is clamped relative to this).
    nominal_gain: f64,
    /// Online gain estimation enabled?
    adaptive: bool,
    /// EWMA accumulators for the through-origin (Δf, ΔP) regression.
    adapt_num: f64,
    adapt_den: f64,
    /// Previous invocation's measured power and frequency state, for the
    /// gain estimator.
    prev_measured: Option<f64>,
    prev_f_norm: f64,
    /// Slew limit: largest normalized frequency move per invocation.
    /// Roughly half an operating-point step — it damps the limit cycling a
    /// quantized actuator otherwise exhibits around a fixed target, without
    /// slowing large transients much (a full-range move still completes in
    /// ~12 invocations ≈ one GPM interval).
    max_step: f64,
    /// Continuous normalized frequency state in `[0, 1]`.
    f_norm: f64,
    /// Current power target.
    target: Watts,
    /// EWMA of the transducer's sensing error (true − sensed, watts),
    /// learned from GPM-granularity power measurements and added back
    /// into every estimate. The calibration sweep fixes the *shape* of
    /// P(U); this re-zeroing tracks the slow bias workload phases and
    /// die temperature put under it.
    sensor_offset: f64,
    invocations: u64,
    /// GPM round currently in force (provenance coordinate, set by the
    /// coordinator via [`PerIslandController::begin_round`]).
    round: u64,
    /// PIC interval ordinal within the current round.
    step_in_round: u32,
    /// Flight-recorder handle (disabled by default: one branch per invoke).
    recorder: Recorder,
}

impl PerIslandController {
    /// Creates a controller for `island`.
    ///
    /// * `island_max_power` — the normalization basis (Σ of the island's
    ///   cores' maximum power),
    /// * `gains` — PID design point (use [`PidGains::paper`]),
    /// * `plant_gain` — the identified system gain `a` (paper: 0.79),
    /// * `sensor` — transducer (real design) or oracle (ablation).
    pub fn new(
        island: IslandId,
        table: DvfsTable,
        island_max_power: Watts,
        gains: PidGains,
        plant_gain: f64,
        sensor: PicSensor,
    ) -> Self {
        assert!(
            island_max_power.value() > 0.0,
            "island max power must be positive"
        );
        assert!(plant_gain > 0.0, "plant gain must be positive");
        Self {
            island,
            // Anti-windup: the integral cannot usefully exceed the full
            // normalized power range.
            pid: Pid::new(gains).with_integral_limit(2.0),
            sensor,
            transducer: UtilizationPowerTransducer::new(),
            table,
            island_max_power,
            plant_gain,
            nominal_gain: plant_gain,
            adaptive: false,
            adapt_num: 0.0,
            adapt_den: 0.0,
            prev_measured: None,
            prev_f_norm: 1.0,
            max_step: 0.08,
            f_norm: 1.0, // chips boot at the top operating point
            target: island_max_power,
            sensor_offset: 0.0,
            invocations: 0,
            round: 0,
            step_in_round: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a flight-recorder handle; every `invoke` then emits a
    /// [`EventPayload::PicDecision`] and every `rezero` a
    /// [`EventPayload::TransducerRezero`].
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Enables online plant-gain adaptation. The estimate is clamped to
    /// `[nominal/2, 2·nominal]` — comfortably inside the `0 < g < 2.1`
    /// stability band §II-D guarantees around the design gain.
    pub fn with_adaptive_gain(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// The plant gain currently in use (equals the constructor value until
    /// adaptation refines it).
    pub fn plant_gain(&self) -> f64 {
        self.plant_gain
    }

    /// The island this controller manages.
    pub fn island(&self) -> IslandId {
        self.island
    }

    /// The current power target (set by the GPM).
    pub fn target(&self) -> Watts {
        self.target
    }

    /// Number of control invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Marks the start of GPM round `round`: subsequent `invoke`s stamp
    /// their [`EventPayload::PicDecision`] events with this round and a
    /// step ordinal counting from 0, which is what makes the emitted
    /// span ids line up with the coordinator's `GpmRound` span.
    pub fn begin_round(&mut self, round: u64) {
        self.round = round;
        self.step_in_round = 0;
    }

    /// The provenance coordinate of the *next* invocation:
    /// `(round, step)` as the emitted span id will carry it.
    pub fn next_decision_coordinates(&self) -> (u64, u32) {
        (self.round, self.step_in_round)
    }

    /// Sets a new power target (the GPM's provisioned value). The PID state
    /// is *kept* — the integral carries useful plant knowledge across
    /// re-provisioning.
    pub fn set_target(&mut self, target: Watts) {
        assert!(target.value() >= 0.0, "power target cannot be negative");
        self.target = target;
    }

    /// Feeds one transducer calibration observation (capacity utilization
    /// vs true island power). In a real system these come from a one-time
    /// platform characterization; the coordinator performs an equivalent
    /// profiling pass.
    pub fn observe_calibration(&mut self, capacity_utilization: Ratio, power: Watts) {
        self.transducer.observe(capacity_utilization, power);
    }

    /// True when the sensor path is ready (always, in oracle mode).
    pub fn is_calibrated(&self) -> bool {
        self.sensor == PicSensor::Oracle || self.transducer.is_calibrated()
    }

    /// The transducer fit quality, if any.
    pub fn transducer_r_squared(&self) -> Option<f64> {
        self.transducer.r_squared()
    }

    /// Converts the observables into sensed power.
    pub fn sense(&self, capacity_utilization: Ratio, true_power: Watts) -> Watts {
        match self.sensor {
            PicSensor::Transducer => Watts::new(
                (self.transducer.estimate_power(capacity_utilization).value() + self.sensor_offset)
                    .max(0.0),
            ),
            PicSensor::Oracle => true_power,
        }
    }

    /// Re-zeroes the transducer against a GPM-granularity power
    /// measurement: `mean_true_power` over the interval whose mean
    /// capacity utilization was `mean_capacity_utilization`. Real chips
    /// expose exactly this signal — the same coarse per-island meter that
    /// feeds the GPM's `IslandFeedback` — so the fast sensor's slow bias
    /// (phase drift, temperature-dependent leakage) can be trimmed out
    /// without re-running the calibration sweep. No-op in oracle mode.
    pub fn rezero(&mut self, mean_capacity_utilization: Ratio, mean_true_power: Watts) {
        if self.sensor == PicSensor::Oracle || !self.transducer.is_calibrated() {
            return;
        }
        let sensed = self.transducer.estimate_power(mean_capacity_utilization);
        let err = (mean_true_power - sensed).value();
        // Fast enough to cancel a phase-induced bias within a few GPM
        // intervals, slow enough not to chase within-interval noise.
        const ALPHA: f64 = 0.4;
        self.sensor_offset += ALPHA * (err - self.sensor_offset);
        self.recorder.record(EventPayload::TransducerRezero {
            island: self.island.0 as u32,
            residual_w: err,
            offset_w: self.sensor_offset,
        });
    }

    /// The current sensing-bias correction (watts); zero until `rezero`
    /// observations arrive.
    pub fn sensor_offset(&self) -> Watts {
        Watts::new(self.sensor_offset)
    }

    /// One control invocation: sense, compute the error, run the PID, move
    /// the frequency state, and return the DVFS index to apply.
    pub fn invoke(&mut self, capacity_utilization: Ratio, true_power: Watts) -> usize {
        let measured = self.sense(capacity_utilization, true_power);
        if self.adaptive {
            self.learn_gain(measured);
        }
        let error = (self.target - measured).value() / self.island_max_power.value();
        let terms = self.pid.step_terms(error);
        let u = terms.output;
        let desired = u / self.plant_gain;
        let before = self.f_norm;
        self.f_norm = (self.f_norm + desired.clamp(-self.max_step, self.max_step)).clamp(0.0, 1.0);
        // Anti-windup: rewind the integral by whatever the slew/range
        // clamps refused to actuate.
        let realized = self.f_norm - before;
        self.pid.back_calculate(u - realized * self.plant_gain);
        self.prev_f_norm = before;
        self.invocations += 1;
        let index = self.current_index();
        let island = self.island.0 as u32;
        let span = SpanId::pic_decision(self.round, island, self.step_in_round);
        self.recorder.record(EventPayload::PicDecision {
            span: span.raw(),
            parent: SpanId::gpm_round(self.round).raw(),
            round: self.round,
            step: self.step_in_round,
            island,
            sensed_w: measured.value(),
            utilization: capacity_utilization.value(),
            target_w: self.target.value(),
            error,
            p_term: terms.p,
            i_term: terms.i,
            d_term: terms.d,
            output: u,
            dvfs_index: index as u32,
            saturated: (realized - desired).abs() > 1e-12,
        });
        self.step_in_round += 1;
        index
    }

    /// One step of the online gain estimator: regress the normalized power
    /// delta on the previous frequency move (through the origin, Eq. 8),
    /// with exponential forgetting, and clamp within the stability band.
    fn learn_gain(&mut self, measured: Watts) {
        const DECAY: f64 = 0.95;
        const MIN_MOVE: f64 = 0.02;
        let p_norm = measured.value() / self.island_max_power.value();
        if let Some(prev) = self.prev_measured {
            let df = self.f_norm - self.prev_f_norm;
            if df.abs() >= MIN_MOVE {
                let dp = p_norm - prev;
                self.adapt_num = DECAY * self.adapt_num + df * dp;
                self.adapt_den = DECAY * self.adapt_den + df * df;
                if self.adapt_den > 1e-4 {
                    let est = self.adapt_num / self.adapt_den;
                    self.plant_gain = est.clamp(0.5 * self.nominal_gain, 2.0 * self.nominal_gain);
                }
            }
        }
        self.prev_measured = Some(p_norm);
    }

    /// The DVFS index corresponding to the current continuous state.
    pub fn current_index(&self) -> usize {
        let span = self.table.frequency_span();
        let f = self.table.min_point().frequency + span * self.f_norm;
        self.table.nearest_index(f)
    }

    /// Resets the dynamic controller state (PID + frequency) without losing
    /// the transducer calibration or the adapted gain.
    pub fn reset(&mut self) {
        self.pid.reset();
        self.f_norm = 1.0;
        self.prev_f_norm = 1.0;
        self.prev_measured = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A closed-loop test double: first-order island plant whose power
    /// responds to the normalized frequency with gain `a`, plus an idle
    /// floor.
    struct FakeIsland {
        max_power: Watts,
        idle_frac: f64,
        gain: f64,
        f_norm: f64,
    }

    impl FakeIsland {
        fn new() -> Self {
            Self {
                max_power: Watts::new(24.0),
                idle_frac: 0.17,
                gain: 0.83,
                f_norm: 1.0,
            }
        }

        fn apply(&mut self, idx: usize, table: &DvfsTable) {
            let span = table.frequency_span();
            let f = table.point(idx).frequency - table.min_point().frequency;
            self.f_norm = f / span;
        }

        fn power(&self) -> Watts {
            self.max_power * (self.idle_frac + self.gain * self.f_norm)
        }

        fn capacity_utilization(&self) -> Ratio {
            // Busy fraction ~0.9, scaled by normalized frequency position.
            Ratio::new(0.9 * (0.3 + 0.7 * self.f_norm))
        }
    }

    fn controller(sensor: PicSensor) -> PerIslandController {
        PerIslandController::new(
            IslandId(0),
            DvfsTable::pentium_m(),
            Watts::new(24.0),
            PidGains::paper(),
            0.79,
            sensor,
        )
    }

    fn run_loop(pic: &mut PerIslandController, island: &mut FakeIsland, steps: usize) -> Vec<f64> {
        let table = DvfsTable::pentium_m();
        (0..steps)
            .map(|_| {
                let idx = pic.invoke(island.capacity_utilization(), island.power());
                island.apply(idx, &table);
                island.power().value()
            })
            .collect()
    }

    #[test]
    fn oracle_loop_converges_to_target() {
        let mut pic = controller(PicSensor::Oracle);
        let mut island = FakeIsland::new();
        pic.set_target(Watts::new(14.0));
        let trace = run_loop(&mut pic, &mut island, 40);
        let tail = &trace[30..];
        for &p in tail {
            assert!(
                (p - 14.0).abs() < 1.5,
                "steady power {p} should track 14 W (quantized DVFS)"
            );
        }
    }

    #[test]
    fn settles_within_a_handful_of_invocations() {
        // The paper observes 5–6 PIC invocations to settle on modest target
        // changes (§IV, Fig. 9).
        // Targets sit on reachable (quantized) power levels of the fake
        // island: p(k) = 4.08 + 2.846·k → 21.15 and 18.31 W.
        let mut pic = controller(PicSensor::Oracle);
        let mut island = FakeIsland::new();
        pic.set_target(Watts::new(21.2));
        run_loop(&mut pic, &mut island, 20);
        pic.set_target(Watts::new(18.3));
        let trace = run_loop(&mut pic, &mut island, 10);
        // Within 6 invocations the power must be inside 5 % of target.
        let settled = trace
            .iter()
            .position(|&p| (p - 18.3).abs() / 18.3 < 0.05)
            .expect("must settle");
        assert!(
            settled < 6,
            "settled after {settled} invocations: {trace:?}"
        );
    }

    #[test]
    fn transducer_mode_tracks_after_calibration() {
        let mut pic = controller(PicSensor::Transducer);
        let mut island = FakeIsland::new();
        let table = DvfsTable::pentium_m();
        // Calibrate across the DVFS range.
        for idx in 0..table.len() {
            island.apply(idx, &table);
            pic.observe_calibration(island.capacity_utilization(), island.power());
        }
        assert!(pic.is_calibrated());
        assert!(pic.transducer_r_squared().unwrap() > 0.99);
        island.apply(7, &table);
        pic.set_target(Watts::new(15.0));
        let trace = run_loop(&mut pic, &mut island, 40);
        let tail_mean: f64 = trace[30..].iter().sum::<f64>() / 10.0;
        assert!(
            (tail_mean - 15.0).abs() < 1.5,
            "transducer loop steady at {tail_mean}, want ≈15"
        );
    }

    #[test]
    fn saturates_at_table_bottom_for_impossible_targets() {
        let mut pic = controller(PicSensor::Oracle);
        let mut island = FakeIsland::new();
        pic.set_target(Watts::new(1.0)); // below the idle floor (~4 W)
        run_loop(&mut pic, &mut island, 30);
        assert_eq!(pic.current_index(), 0, "must pin the lowest V/F pair");
    }

    #[test]
    fn saturates_at_table_top_for_generous_targets() {
        let mut pic = controller(PicSensor::Oracle);
        let mut island = FakeIsland::new();
        pic.set_target(Watts::new(40.0)); // above max power
        run_loop(&mut pic, &mut island, 30);
        assert_eq!(pic.current_index(), 7, "must pin the highest V/F pair");
    }

    #[test]
    fn anti_windup_allows_quick_recovery_from_saturation() {
        let mut pic = controller(PicSensor::Oracle);
        let mut island = FakeIsland::new();
        // Long stretch at an unreachable target winds the integral up...
        pic.set_target(Watts::new(40.0));
        run_loop(&mut pic, &mut island, 100);
        // ...then a reachable target must be reacquired promptly.
        pic.set_target(Watts::new(12.0));
        let trace = run_loop(&mut pic, &mut island, 25);
        let tail = trace[15..].iter().sum::<f64>() / 10.0;
        assert!(
            (tail - 12.0).abs() < 1.5,
            "post-saturation steady power {tail}"
        );
    }

    #[test]
    fn adaptive_gain_converges_toward_the_true_gain() {
        // The fake island's true normalized gain is 0.83; start the PIC
        // with a deliberately wrong design gain of 0.5 and let adaptation
        // close the gap while tracking.
        let mut pic = PerIslandController::new(
            IslandId(0),
            DvfsTable::pentium_m(),
            Watts::new(24.0),
            PidGains::paper(),
            0.5,
            PicSensor::Oracle,
        )
        .with_adaptive_gain();
        let mut island = FakeIsland::new();
        // Wander between two targets to give the estimator excitation.
        for &t in [12.0, 20.0, 14.0, 21.0, 13.0, 19.0].iter() {
            pic.set_target(Watts::new(t));
            run_loop(&mut pic, &mut island, 15);
        }
        let a = pic.plant_gain();
        assert!(
            (a - 0.83).abs() < 0.25,
            "adapted gain {a} should approach the true 0.83"
        );
    }

    #[test]
    fn adaptive_gain_stays_inside_the_stability_band() {
        let mut pic = PerIslandController::new(
            IslandId(0),
            DvfsTable::pentium_m(),
            Watts::new(24.0),
            PidGains::paper(),
            0.79,
            PicSensor::Oracle,
        )
        .with_adaptive_gain();
        let mut island = FakeIsland::new();
        for &t in [8.0, 22.0, 10.0, 23.0, 9.0].iter() {
            pic.set_target(Watts::new(t));
            run_loop(&mut pic, &mut island, 12);
        }
        let a = pic.plant_gain();
        assert!((0.395..=1.58).contains(&a), "gain {a} escaped the clamp");
    }

    #[test]
    fn non_adaptive_gain_never_moves() {
        let mut pic = controller(PicSensor::Oracle);
        let mut island = FakeIsland::new();
        pic.set_target(Watts::new(12.0));
        run_loop(&mut pic, &mut island, 30);
        assert_eq!(pic.plant_gain(), 0.79);
    }

    #[test]
    fn set_target_validates() {
        let mut pic = controller(PicSensor::Oracle);
        pic.set_target(Watts::ZERO); // allowed: full clamp-down
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_target_panics() {
        controller(PicSensor::Oracle).set_target(Watts::new(-1.0));
    }

    #[test]
    fn reset_preserves_calibration() {
        let mut pic = controller(PicSensor::Transducer);
        pic.observe_calibration(Ratio::new(0.2), Watts::new(8.0));
        pic.observe_calibration(Ratio::new(0.5), Watts::new(14.0));
        pic.observe_calibration(Ratio::new(0.8), Watts::new(20.0));
        assert!(pic.is_calibrated());
        pic.reset();
        assert!(pic.is_calibrated(), "calibration survives reset");
        assert_eq!(pic.current_index(), 7, "frequency state back to top");
    }
}
