//! The paper's contribution: **coordinated two-tier power management** for
//! chip-multiprocessors with voltage/frequency islands.
//!
//! * [`pic`] — the **P**er-**I**sland **C**ontroller: a PID loop (paper
//!   Eq. 7) that caps island power at its provisioned level by moving the
//!   island's single DVFS knob, sensing power through a calibrated
//!   utilization→power transducer (§II-D),
//! * [`gpm`] — the **G**lobal **P**ower **M**anager: invoked at a coarser
//!   interval, it splits the chip-wide budget across islands according to a
//!   pluggable [`gpm::ProvisioningPolicy`],
//! * [`policies`] — the three published policies: performance-aware
//!   (Eqs. 1–6), thermal-aware (§IV-A), variation-aware (§IV-B),
//! * [`maxbips`] — the MaxBIPS comparison baseline (Isci et al.): an
//!   open-loop global manager choosing DVFS combinations from a prediction
//!   table,
//! * [`coordinator`] — the runtime harness wiring chip + GPM + PICs on the
//!   Fig. 4 timeline, plus the no-management and MaxBIPS baselines,
//! * [`metrics`] — overshoot / settling-time / steady-state-error
//!   extraction (§II-A's robustness metrics),
//! * [`model`] — system identification against the running chip: the
//!   Fig. 5 model-validation experiment and the `aᵢ` gain fit.

pub mod coordinator;
pub mod gpm;
pub mod maxbips;
pub mod metrics;
pub mod model;
pub mod pic;
pub mod policies;

pub use coordinator::{Coordinator, ExperimentConfig, ManagementScheme, Outcome, SensorMode};
pub use gpm::{GlobalPowerManager, IslandFeedback, ProvisioningPolicy};
pub use maxbips::MaxBips;
pub use metrics::{robustness_summary, segment_metrics, RobustnessSummary, TrackingSummary};
pub use pic::PerIslandController;
pub use policies::energy::EnergyAware;
pub use policies::performance::PerformanceAware;
pub use policies::qos::{QosAware, QosClass};
pub use policies::thermal::{ThermalAware, ThermalConstraints};
pub use policies::variation::VariationAware;

/// One-stop imports for typical use of the public API.
pub mod prelude {
    pub use crate::coordinator::{
        Coordinator, ExperimentConfig, ManagementScheme, Outcome, SensorMode,
    };
    pub use crate::gpm::{GlobalPowerManager, IslandFeedback, ProvisioningPolicy};
    pub use crate::maxbips::MaxBips;
    pub use crate::pic::PerIslandController;
    pub use crate::policies::energy::EnergyAware;
    pub use crate::policies::performance::PerformanceAware;
    pub use crate::policies::qos::{QosAware, QosClass};
    pub use crate::policies::thermal::{ThermalAware, ThermalConstraints};
    pub use crate::policies::variation::VariationAware;
    pub use cpm_sim::CmpConfig;
    pub use cpm_workloads::Mix;
}
