//! The Global Power Manager: chip-budget provisioning across islands.
//!
//! The GPM runs every `T_global` (5 ms). It reads per-island feedback from
//! the *previous* GPM interval and produces the next power allocation,
//! delegating the actual split to a pluggable [`ProvisioningPolicy`] —
//! the decoupling the paper highlights as the architecture's key
//! flexibility (§II-C). The GPM then enforces two invariants regardless of
//! policy behaviour:
//!
//! * allocations are clamped to each island's physical range
//!   `[idle floor, island max]`, with the excess re-distributed
//!   (water-filling), and
//! * the total never exceeds the chip budget.

use cpm_obs::{EventPayload, Recorder};
use cpm_units::{IslandId, Joules, Ratio, Watts};

/// What the GPM observed about one island over the last GPM interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslandFeedback {
    /// The island.
    pub island: IslandId,
    /// Power allocated to it for the interval just ended.
    pub allocated: Watts,
    /// Average actual power it drew.
    pub actual_power: Watts,
    /// Average throughput (billions of instructions per second).
    pub bips: f64,
    /// Mean CPU utilization.
    pub utilization: Ratio,
    /// Energy per instruction over the interval, when instructions retired.
    pub epi: Option<Joules>,
    /// Hottest core temperature in the island, °C.
    pub peak_temperature: f64,
}

/// Constraint-violation statistics a policy may accumulate (used by the
/// thermal-aware policy and by observe-only trackers; see
/// [`crate::policies::thermal`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViolationStats {
    /// Intervals observed.
    pub intervals: u64,
    /// Intervals in which at least one constraint was violated.
    pub violated_intervals: u64,
}

impl ViolationStats {
    /// Fraction of intervals with a violation (Fig. 18(c)).
    pub fn violation_fraction(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.violated_intervals as f64 / self.intervals as f64
        }
    }
}

/// A policy that splits the chip budget across islands.
pub trait ProvisioningPolicy {
    /// Human-readable policy name (for reports).
    fn name(&self) -> &'static str;

    /// Computes the next per-island allocation. `feedback` is ordered by
    /// island id; the returned vector must have the same length. The GPM
    /// post-processes the result (range clamping + budget capping), so a
    /// policy may return an idealized split.
    fn provision(&mut self, budget: Watts, feedback: &[IslandFeedback]) -> Vec<Watts>;

    /// Constraint-violation statistics, for policies that track them
    /// (default: none).
    fn violation_stats(&self) -> Option<&ViolationStats> {
        None
    }

    /// Attaches a flight-recorder handle, for policies that emit events
    /// (default: ignore it).
    fn set_recorder(&mut self, _recorder: Recorder) {}
}

/// Physical allocation bounds for one island.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslandRange {
    /// Power the island draws even at the lowest V/F point (cannot
    /// allocate below this — the PIC could not meet it).
    pub floor: Watts,
    /// Power at the top V/F point, fully active.
    pub ceiling: Watts,
}

/// The GPM: budget + policy + allocation post-processing.
pub struct GlobalPowerManager {
    budget: Watts,
    policy: Box<dyn ProvisioningPolicy + Send>,
    ranges: Vec<IslandRange>,
    invocations: u64,
    recorder: Recorder,
    /// Islands whose local controller is known dead (scenario failover):
    /// their "allocation" is pinned to the uncontrolled power they
    /// actually draw, and the healthy islands split what remains.
    failed: Vec<bool>,
}

impl GlobalPowerManager {
    /// Creates a GPM with the given chip budget, policy, and per-island
    /// physical ranges.
    pub fn new(
        budget: Watts,
        policy: Box<dyn ProvisioningPolicy + Send>,
        ranges: Vec<IslandRange>,
    ) -> Self {
        assert!(!ranges.is_empty(), "need at least one island");
        assert!(budget.value() > 0.0, "budget must be positive");
        for r in &ranges {
            assert!(r.floor.value() >= 0.0 && r.ceiling > r.floor);
        }
        let floor_sum: Watts = ranges.iter().map(|r| r.floor).sum();
        assert!(
            budget >= floor_sum,
            "budget {budget} below the chip's idle floor {floor_sum}"
        );
        let islands = ranges.len();
        Self {
            budget,
            policy,
            ranges,
            invocations: 0,
            recorder: Recorder::disabled(),
            failed: vec![false; islands],
        }
    }

    /// Attaches a flight-recorder handle; every `provision` then emits one
    /// [`EventPayload::GpmAllocation`] per island. The handle is also
    /// forwarded to the policy so constraint trackers and explorers share
    /// the same trace.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.policy.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The chip-wide budget.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Updates the chip-wide budget (e.g. a rack-level manager changed it).
    pub fn set_budget(&mut self, budget: Watts) {
        let floor_sum: Watts = self.ranges.iter().map(|r| r.floor).sum();
        assert!(budget >= floor_sum, "budget below idle floor");
        self.budget = budget;
    }

    /// The chip's idle floor: the least budget any allocation can meet
    /// (every island at the bottom operating point).
    pub fn floor(&self) -> Watts {
        self.ranges.iter().map(|r| r.floor).sum()
    }

    /// Marks one island's local controller dead or alive. While dead, the
    /// GPM *fails over*: the island's allocation is replaced by the
    /// uncontrolled power it actually drew last interval (range-clamped),
    /// that draw is charged against the budget, and only the healthy
    /// islands participate in the over-budget shave. Clearing the flag
    /// restores normal provisioning at the next invocation.
    pub fn set_island_failed(&mut self, island: IslandId, failed: bool) {
        self.failed[island.index()] = failed;
    }

    /// True when the island is currently marked failed.
    pub fn island_failed(&self, island: IslandId) -> bool {
        self.failed[island.index()]
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Constraint-violation statistics from the active policy, if it
    /// tracks any (the thermal-aware policy does).
    pub fn policy_violation_stats(&self) -> Option<&ViolationStats> {
        self.policy.violation_stats()
    }

    /// GPM invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Initial allocation before any feedback exists: the equal split of
    /// the paper ("power is initially provisioned equally to each island",
    /// §II-C), range-clamped.
    pub fn initial_allocation(&self) -> Vec<Watts> {
        let n = self.ranges.len();
        let equal = vec![self.budget / n as f64; n];
        self.normalize(equal)
    }

    /// One GPM invocation: run the policy, then enforce the invariants.
    pub fn provision(&mut self, feedback: &[IslandFeedback]) -> Vec<Watts> {
        assert_eq!(
            feedback.len(),
            self.ranges.len(),
            "feedback must cover every island"
        );
        self.invocations += 1;
        let mut raw = self.policy.provision(self.budget, feedback);
        assert_eq!(
            raw.len(),
            self.ranges.len(),
            "policy must allocate every island"
        );
        // Failover: a dead controller cannot enforce any allocation, so
        // pin the island at its observed uncontrolled draw and let the
        // shave below rebalance the healthy islands around it.
        for (i, a) in raw.iter_mut().enumerate() {
            if self.failed[i] {
                *a = feedback[i].actual_power;
            }
        }
        let alloc = self.normalize_pinned(raw, &self.failed);
        if self.recorder.is_enabled() {
            for (island, (a, fb)) in alloc.iter().zip(feedback).enumerate() {
                self.recorder.record(EventPayload::GpmAllocation {
                    round: self.invocations,
                    island: island as u32,
                    allocated_w: a.value(),
                    actual_w: fb.actual_power.value(),
                    budget_w: self.budget.value(),
                });
            }
        }
        alloc
    }

    /// Clamps each allocation into its island's physical range and, when
    /// the total exceeds the budget, shaves the excess proportionally
    /// above the floors. The GPM never *adds* power a policy did not ask
    /// for: an under-budget allocation is a legitimate policy decision
    /// (the thermal-aware policy deliberately strands power to keep
    /// adjacent islands cool, and the demand-ceiling logic strands power
    /// no island can convert into work).
    fn normalize(&self, alloc: Vec<Watts>) -> Vec<Watts> {
        let pinned = vec![false; alloc.len()];
        self.normalize_pinned(alloc, &pinned)
    }

    /// `normalize` with a pin mask: pinned islands are still range-
    /// clamped (physics does not care why a controller died) but
    /// contribute no slack to the over-budget shave — their draw is a
    /// fact the healthy islands must provision around.
    fn normalize_pinned(&self, mut alloc: Vec<Watts>, pinned: &[bool]) -> Vec<Watts> {
        let n = alloc.len();
        // Non-finite or negative policy outputs become the floor.
        for (a, r) in alloc.iter_mut().zip(&self.ranges) {
            if !a.is_finite() || *a < r.floor {
                *a = r.floor;
            }
            if *a > r.ceiling {
                *a = r.ceiling;
            }
        }
        // Over budget: shave proportionally above floors (a few passes
        // converge for n ≤ 32; floors bound the shave per pass).
        for _ in 0..n + 2 {
            let total: Watts = alloc.iter().copied().sum();
            let over = total - self.budget;
            if over.value() <= 1e-9 {
                break;
            }
            let slack: Vec<f64> = alloc
                .iter()
                .zip(&self.ranges)
                .zip(pinned)
                .map(|((a, r), &p)| if p { 0.0 } else { (*a - r.floor).value() })
                .collect();
            let total_slack: f64 = slack.iter().sum();
            if total_slack <= 1e-12 {
                break;
            }
            let scale = (over.value() / total_slack).min(1.0);
            for (a, s) in alloc.iter_mut().zip(&slack) {
                *a -= Watts::new(s * scale);
            }
        }
        alloc
    }
}

impl std::fmt::Debug for GlobalPowerManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalPowerManager")
            .field("budget", &self.budget)
            .field("policy", &self.policy.name())
            .field("islands", &self.ranges.len())
            .field("invocations", &self.invocations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Policy double: returns whatever allocations it was primed with.
    struct Fixed(Vec<f64>);
    impl ProvisioningPolicy for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn provision(&mut self, _b: Watts, _f: &[IslandFeedback]) -> Vec<Watts> {
            self.0.iter().map(|&w| Watts::new(w)).collect()
        }
    }

    fn ranges4() -> Vec<IslandRange> {
        vec![
            IslandRange {
                floor: Watts::new(4.0),
                ceiling: Watts::new(25.0),
            };
            4
        ]
    }

    fn feedback4() -> Vec<IslandFeedback> {
        (0..4)
            .map(|i| IslandFeedback {
                island: IslandId(i),
                allocated: Watts::new(20.0),
                actual_power: Watts::new(18.0),
                bips: 2.0,
                utilization: Ratio::new(0.7),
                epi: None,
                peak_temperature: 60.0,
            })
            .collect()
    }

    #[test]
    fn initial_allocation_is_equal_split() {
        let gpm = GlobalPowerManager::new(Watts::new(80.0), Box::new(Fixed(vec![])), ranges4());
        let a = gpm.initial_allocation();
        for w in &a {
            assert!((w.value() - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn over_budget_requests_are_shaved_never_padded() {
        let mut gpm = GlobalPowerManager::new(
            Watts::new(60.0),
            Box::new(Fixed(vec![25.0, 25.0, 25.0, 25.0])),
            ranges4(),
        );
        let a = gpm.provision(&feedback4());
        let total: f64 = a.iter().map(|w| w.value()).sum();
        assert!((total - 60.0).abs() < 1e-6, "shaved to the budget: {total}");
        // Under-budget requests are honored verbatim (no upward fill).
        let mut gpm2 = GlobalPowerManager::new(
            Watts::new(80.0),
            Box::new(Fixed(vec![10.0, 10.0, 10.0, 10.0])),
            ranges4(),
        );
        let b = gpm2.provision(&feedback4());
        for w in &b {
            assert!((w.value() - 10.0).abs() < 1e-9, "no padding: {w}");
        }
    }

    #[test]
    fn floors_are_respected() {
        let mut gpm = GlobalPowerManager::new(
            Watts::new(30.0),
            Box::new(Fixed(vec![0.0, 0.0, 0.0, 30.0])),
            ranges4(),
        );
        let a = gpm.provision(&feedback4());
        for (i, w) in a.iter().enumerate() {
            assert!(w.value() >= 4.0 - 1e-9, "island {i} below floor: {w}");
        }
        let total: f64 = a.iter().map(|w| w.value()).sum();
        assert!(total <= 30.0 + 1e-6);
    }

    #[test]
    fn nan_policy_output_degrades_to_floor() {
        let mut gpm = GlobalPowerManager::new(
            Watts::new(80.0),
            Box::new(Fixed(vec![f64::NAN, 20.0, 20.0, 20.0])),
            ranges4(),
        );
        let a = gpm.provision(&feedback4());
        assert!(a[0].is_finite());
        assert!(a[0].value() >= 4.0);
    }

    #[test]
    fn requests_above_ceiling_are_clamped() {
        let mut gpm = GlobalPowerManager::new(
            Watts::new(200.0),
            Box::new(Fixed(vec![60.0, 60.0, 60.0, 60.0])),
            ranges4(),
        );
        let a = gpm.provision(&feedback4());
        for w in &a {
            assert!((w.value() - 25.0).abs() < 1e-6, "ceiling expected, got {w}");
        }
    }

    #[test]
    #[should_panic(expected = "idle floor")]
    fn infeasible_budget_rejected() {
        GlobalPowerManager::new(Watts::new(10.0), Box::new(Fixed(vec![])), ranges4());
    }

    #[test]
    #[should_panic(expected = "cover every island")]
    fn wrong_feedback_length_panics() {
        let mut gpm =
            GlobalPowerManager::new(Watts::new(80.0), Box::new(Fixed(vec![20.0; 4])), ranges4());
        gpm.provision(&feedback4()[..2]);
    }

    #[test]
    fn failed_island_is_pinned_to_its_actual_draw() {
        let mut gpm = GlobalPowerManager::new(
            Watts::new(60.0),
            Box::new(Fixed(vec![25.0, 25.0, 25.0, 25.0])),
            ranges4(),
        );
        let mut fb = feedback4();
        fb[1].actual_power = Watts::new(22.0); // uncontrolled draw
        gpm.set_island_failed(IslandId(1), true);
        assert!(gpm.island_failed(IslandId(1)));
        let a = gpm.provision(&fb);
        assert!(
            (a[1].value() - 22.0).abs() < 1e-9,
            "failed island pinned at its draw, got {}",
            a[1]
        );
        let total: f64 = a.iter().map(|w| w.value()).sum();
        assert!(total <= 60.0 + 1e-6, "budget respected: {total}");
        // The shave lands only on the healthy islands.
        for (i, w) in a.iter().enumerate() {
            if i != 1 {
                assert!(w.value() < 25.0 - 1e-9, "island {i} not shaved: {w}");
            }
        }
        // Recovery restores normal provisioning.
        gpm.set_island_failed(IslandId(1), false);
        let b = gpm.provision(&fb);
        let total: f64 = b.iter().map(|w| w.value()).sum();
        assert!((total - 60.0).abs() < 1e-6, "post-recovery total {total}");
    }

    #[test]
    fn floor_is_the_range_floor_sum() {
        let gpm = GlobalPowerManager::new(Watts::new(80.0), Box::new(Fixed(vec![])), ranges4());
        assert!((gpm.floor().value() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn invocations_count() {
        let mut gpm =
            GlobalPowerManager::new(Watts::new(80.0), Box::new(Fixed(vec![20.0; 4])), ranges4());
        gpm.provision(&feedback4());
        gpm.provision(&feedback4());
        assert_eq!(gpm.invocations(), 2);
    }
}
