//! The coordinator's process-wide memo caches (reference-power probe,
//! transducer calibration sweep) must be *bit-identical* to recomputation:
//! a run whose calibration was replayed from the cache has to produce
//! exactly the trajectory a memo-free run produces, or the workers=1 vs
//! workers=4 byte-determinism gate would depend on cache population order.

use cpm_core::coordinator::{Coordinator, ExperimentConfig, Outcome};
use cpm_sim::TimeSeries;

#[test]
fn memoized_reference_power_is_bit_identical_to_direct_probe() {
    let cfg = ExperimentConfig::paper_default().with_budget_percent(80.0);
    // Whatever the first construction did, this one is a guaranteed cache
    // hit for the same construction key.
    let warm = Coordinator::new(cfg.clone()).unwrap();
    drop(warm);
    let coord = Coordinator::new(cfg).unwrap();
    let direct = Coordinator::probe_reference_power_uncached(coord.chip());
    assert_eq!(
        coord.reference_power().value().to_bits(),
        direct.value().to_bits(),
        "memoized reference power {} != direct probe {}",
        coord.reference_power(),
        direct
    );
}

fn series_bits(s: &TimeSeries) -> Vec<(u64, u64)> {
    s.samples()
        .iter()
        .map(|x| (x.time.value().to_bits(), x.value.to_bits()))
        .collect()
}

fn outcome_bits(o: &Outcome) -> Vec<Vec<(u64, u64)>> {
    let mut all = vec![
        series_bits(&o.chip_power_percent),
        series_bits(&o.chip_bips),
        series_bits(&o.peak_temperature),
    ];
    for s in o
        .island_actual_percent
        .iter()
        .chain(&o.island_target_percent)
        .chain(&o.island_dvfs_index)
    {
        all.push(series_bits(s));
    }
    all
}

#[test]
fn calibration_sweep_replay_reproduces_the_run_bit_for_bit() {
    let cfg = ExperimentConfig::paper_default().with_budget_percent(80.0);

    // First run populates (or reuses) the calibration-sweep memo.
    let mut first = Coordinator::new(cfg.clone()).unwrap();
    first.calibrate();
    let out_first = first.run_for_gpm_intervals(8);

    // Second run's calibrate() is a guaranteed replay from the cache; the
    // whole measured trajectory must still match bit for bit.
    let mut second = Coordinator::new(cfg).unwrap();
    second.calibrate();
    let out_second = second.run_for_gpm_intervals(8);

    assert_eq!(
        out_first.reference_power.value().to_bits(),
        out_second.reference_power.value().to_bits()
    );
    assert_eq!(
        out_first.total_instructions.to_bits(),
        out_second.total_instructions.to_bits()
    );
    assert_eq!(
        outcome_bits(&out_first),
        outcome_bits(&out_second),
        "replayed calibration diverged from the fresh run"
    );
}
