//! Property-based tests for the management layer's invariants, on the
//! in-tree `cpm_rng::check` harness.

use cpm_core::gpm::{GlobalPowerManager, IslandFeedback, IslandRange, ProvisioningPolicy};
use cpm_core::maxbips::{MaxBips, MaxBipsObservation};
use cpm_core::metrics::{mean_settling, segment_metrics};
use cpm_power::dvfs::DvfsTable;
use cpm_rng::{check, Xoshiro256pp};
use cpm_units::{IslandId, Ratio, Watts};

/// A policy double emitting arbitrary (possibly hostile) allocations.
struct Arbitrary(Vec<f64>);
impl ProvisioningPolicy for Arbitrary {
    fn name(&self) -> &'static str {
        "arbitrary"
    }
    fn provision(&mut self, _b: Watts, _f: &[IslandFeedback]) -> Vec<Watts> {
        self.0.iter().map(|&w| Watts::new(w)).collect()
    }
}

fn feedback(n: usize) -> Vec<IslandFeedback> {
    (0..n)
        .map(|i| IslandFeedback {
            island: IslandId(i),
            allocated: Watts::new(20.0),
            actual_power: Watts::new(18.0),
            bips: 2.0,
            utilization: Ratio::new(0.7),
            epi: None,
            peak_temperature: 60.0,
        })
        .collect()
}

/// Hostile policy outputs: negative, NaN, infinite, huge.
fn hostile_alloc(rng: &mut Xoshiro256pp) -> f64 {
    match rng.below(5) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 1e30,
        _ => rng.f64_in(-100.0, 200.0),
    }
}

#[test]
fn gpm_output_is_always_feasible() {
    check::forall_cases("gpm feasible", 128, |rng| {
        let raw: Vec<f64> = (0..4).map(|_| hostile_alloc(rng)).collect();
        let budget = rng.f64_in(30.0, 90.0);
        let ranges = vec![
            IslandRange {
                floor: Watts::new(4.0),
                ceiling: Watts::new(25.0)
            };
            4
        ];
        let mut gpm = GlobalPowerManager::new(Watts::new(budget), Box::new(Arbitrary(raw)), ranges);
        let alloc = gpm.provision(&feedback(4));
        let total: f64 = alloc.iter().map(|w| w.value()).sum();
        assert!(total <= budget + 1e-6, "Σ {total} > budget {budget}");
        for w in &alloc {
            assert!(w.is_finite());
            assert!(w.value() >= 4.0 - 1e-9, "below floor: {w}");
            assert!(w.value() <= 25.0 + 1e-9, "above ceiling: {w}");
        }
    });
}

#[test]
fn gpm_honors_feasible_requests_verbatim() {
    check::forall_cases("gpm passthrough", 128, |rng| {
        let raw: Vec<f64> = (0..4).map(|_| rng.f64_in(5.0, 24.0)).collect();
        let budget = rng.f64_in(30.0, 90.0);
        let ranges = vec![
            IslandRange {
                floor: Watts::new(4.0),
                ceiling: Watts::new(25.0)
            };
            4
        ];
        let mut gpm =
            GlobalPowerManager::new(Watts::new(budget), Box::new(Arbitrary(raw.clone())), ranges);
        let alloc = gpm.provision(&feedback(4));
        let requested: f64 = raw.iter().sum();
        if requested <= budget {
            // In-range, under-budget requests pass through unmodified —
            // the GPM never pads an allocation the policy didn't ask for
            // (deliberate stranding is a policy decision).
            for (a, r) in alloc.iter().zip(&raw) {
                assert!((a.value() - r).abs() < 1e-9, "{a} vs {r}");
            }
        } else {
            let total: f64 = alloc.iter().map(|w| w.value()).sum();
            assert!(
                (total - budget).abs() < 1e-6,
                "shaved Σ {total} != {budget}"
            );
        }
    });
}

#[test]
fn maxbips_choice_never_exceeds_budget() {
    check::forall_cases("maxbips under budget", 128, |rng| {
        let powers = check::vec_f64(rng, 5.0, 30.0, 1, 8);
        let bips = check::vec_f64(rng, 0.1, 5.0, 8, 9);
        let budget = rng.f64_in(10.0, 200.0);
        let mut mb = MaxBips::new(DvfsTable::pentium_m()).with_safety_margin(0.0);
        let obs: Vec<MaxBipsObservation> = powers
            .iter()
            .enumerate()
            .map(|(i, &p)| MaxBipsObservation {
                power: Watts::new(p),
                static_power: Watts::new(p * 0.2),
                bips: bips[i % bips.len()],
                dvfs_index: 7,
            })
            .collect();
        let combo = mb.choose(Watts::new(budget), &obs);
        let predicted = mb.predicted_power(&obs, &combo);
        // Either feasible, or the all-lowest fallback.
        let all_lowest = combo.iter().all(|&l| l == 0);
        assert!(
            predicted.value() <= budget + 1e-6 || all_lowest,
            "predicted {predicted} over budget {budget}: {combo:?}"
        );
    });
}

#[test]
fn maxbips_dp_is_at_least_as_good_as_uniform_throttling() {
    check::forall_cases("maxbips dp vs uniform", 128, |rng| {
        let bips = check::vec_f64(rng, 0.5, 4.0, 4, 5);
        let budget_frac = rng.f64_in(0.4, 1.0);
        let mut mb = MaxBips::new(DvfsTable::pentium_m()).with_safety_margin(0.0);
        let obs: Vec<MaxBipsObservation> = bips
            .iter()
            .map(|&b| MaxBipsObservation {
                power: Watts::new(20.0),
                static_power: Watts::new(4.0),
                bips: b,
                dvfs_index: 7,
            })
            .collect();
        let budget = Watts::new(80.0 * budget_frac);
        let combo = mb.choose(budget, &obs);
        let dp_bips = mb.predicted_bips(&obs, &combo);
        // Best *uniform* level fitting the budget the DP actually sees:
        // each island's cost is rounded UP to the 0.1 W bin (so real power
        // can never exceed the budget), which can shave up to n·bin off
        // the effective budget (plus one bin for the floor() on the bin
        // count). Compare against that so the property is exact rather
        // than off by quantization slack.
        let effective = Watts::new(budget.value() - 5.0 * 0.1);
        let mut best_uniform = 0.0f64;
        for lvl in 0..8 {
            let uniform = vec![lvl; 4];
            if mb.predicted_power(&obs, &uniform) <= effective {
                best_uniform = best_uniform.max(mb.predicted_bips(&obs, &uniform));
            }
        }
        assert!(
            dp_bips + 1e-6 >= best_uniform,
            "dp {dp_bips} < uniform {best_uniform}"
        );
    });
}

#[test]
fn maxbips_dp_matches_exhaustive_up_to_quantization() {
    check::forall_cases("maxbips dp vs exhaustive", 128, |rng| {
        // Small island counts keep the 8^n exhaustive scan cheap while
        // still exercising the DP's monotone propagation and backtrack
        // (mixed per-island costs + tight budgets force picks to come
        // from smaller bins).
        let n = 2 + rng.below(2) as usize; // 2 or 3 islands
        let bin = 0.01;
        let mut mb = MaxBips::new(DvfsTable::pentium_m())
            .with_safety_margin(0.0)
            .with_bin_watts(bin);
        let obs: Vec<MaxBipsObservation> = (0..n)
            .map(|_| MaxBipsObservation {
                power: Watts::new(rng.f64_in(8.0, 30.0)),
                static_power: Watts::new(rng.f64_in(1.0, 6.0)),
                bips: rng.f64_in(0.2, 5.0),
                // Varying the observed operating point varies each
                // island's cost column, which is what makes backtracking
                // non-trivial.
                dvfs_index: rng.below(8) as usize,
            })
            .collect();
        let budget = Watts::new(rng.f64_in(5.0, 40.0 * n as f64));

        let dp = mb.choose(budget, &obs);
        let dp_power = mb.predicted_power(&obs, &dp);
        let all_lowest = dp.iter().all(|&l| l == 0);
        assert!(
            dp_power.value() <= budget.value() + 1e-9 || all_lowest,
            "DP over budget: {dp_power} > {budget} with {dp:?}"
        );

        // The DP rounds each island's cost UP to the bin, which can shave
        // up to n·bin (+ one bin for the floor on the bin count) off the
        // effective budget; exhaustive search on that shaved budget is the
        // exact bound the DP must meet or beat.
        let shaved = Watts::new(budget.value() - (n as f64 + 1.0) * bin);
        if shaved.value() > 0.0 {
            let ex = mb.choose_exhaustive(shaved, &obs);
            let ex_power = mb.predicted_power(&obs, &ex);
            if ex_power.value() <= shaved.value() {
                let bips_dp = mb.predicted_bips(&obs, &dp);
                let bips_ex = mb.predicted_bips(&obs, &ex);
                assert!(
                    bips_dp >= bips_ex - 1e-9,
                    "DP {bips_dp} < exhaustive {bips_ex} (budget {budget}, obs {obs:?})"
                );
            }
        }

        // The round-to-round memo must replay exactly what the search
        // found: same inputs, bit-identical output.
        let replay = mb.choose(budget, &obs);
        assert_eq!(replay, dp, "memo replay diverged from the DP result");
        let recomputed = mb.choose_uncached(budget, &obs);
        assert_eq!(recomputed, dp, "memo result diverged from recomputation");
    });
}

#[test]
fn segment_overshoot_matches_peak() {
    check::forall_cases("segment overshoot", 128, |rng| {
        let trace = check::vec_f64(rng, 1.0, 40.0, 1, 20);
        let target = rng.f64_in(5.0, 30.0);
        let m = segment_metrics(&trace, target, 0.05);
        let peak = trace.iter().cloned().fold(f64::MIN, f64::max);
        assert!((m.overshoot - ((peak - target) / target).max(0.0)).abs() < 1e-12);
    });
}

#[test]
fn mean_settling_tail_really_averages_into_band() {
    check::forall_cases("mean settling band", 128, |rng| {
        let trace = check::vec_f64(rng, 1.0, 40.0, 1, 30);
        let target = rng.f64_in(5.0, 30.0);
        if let Some(k) = mean_settling(&trace, target, 0.05) {
            let tail = &trace[k..];
            let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
            assert!((mean - target).abs() <= 0.05 * target + 1e-9);
        }
    });
}
