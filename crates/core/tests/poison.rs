//! A prober that panics while holding a coordinator memo lock (reference
//! -power probe, calibration sweep) must not wedge every coordinator
//! constructed afterwards: the caches only hold whole finished entries, so
//! later lookups recover the poisoned lock and replay bit-identically.

use cpm_core::coordinator::{self, Coordinator, ExperimentConfig};

#[test]
fn poisoned_probe_memo_recovers_without_wedging_construction() {
    let cfg = ExperimentConfig::paper_default().with_budget_percent(80.0);
    let warm = Coordinator::new(cfg.clone()).unwrap();
    let reference_bits = warm.reference_power().value().to_bits();
    drop(warm);

    coordinator::poison_memo_caches_for_tests();

    // Construction performs the memoized probe lookup; it must recover the
    // poisoned lock and return the same bits, not panic or deadlock.
    let coord = Coordinator::new(cfg).unwrap();
    assert_eq!(
        coord.reference_power().value().to_bits(),
        reference_bits,
        "probe memo entry lost or corrupted by poisoning"
    );
    let direct = Coordinator::probe_reference_power_uncached(coord.chip());
    assert_eq!(
        coord.reference_power().value().to_bits(),
        direct.value().to_bits(),
        "post-poison probe != memo-free path"
    );
}

#[test]
fn poisoned_sweep_memo_recovers_and_replays_bit_identical() {
    let cfg = ExperimentConfig::paper_default().with_budget_percent(80.0);
    let mut first = Coordinator::new(cfg.clone()).unwrap();
    first.calibrate();
    let out_first = first.run_for_gpm_intervals(4);

    coordinator::poison_memo_caches_for_tests();

    // calibrate() replays from the poisoned-then-recovered sweep memo; the
    // measured trajectory must still match the pre-poison run bit for bit.
    let mut second = Coordinator::new(cfg).unwrap();
    second.calibrate();
    let out_second = second.run_for_gpm_intervals(4);
    assert_eq!(
        out_first.reference_power.value().to_bits(),
        out_second.reference_power.value().to_bits()
    );
    assert_eq!(
        out_first.total_instructions.to_bits(),
        out_second.total_instructions.to_bits(),
        "post-poison replay diverged from the pre-poison run"
    );
}
