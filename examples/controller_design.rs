//! Controller design walkthrough: reproduce the paper's §II-D analysis
//! with the control-theory toolkit — identify the plant, place the poles,
//! check the stability margin, and simulate the step response.
//!
//! ```text
//! cargo run --release --example controller_design
//! ```

use cpm::control::jury::jury_test;
use cpm::control::{analysis, closed_loop, island_plant, FrequencyResponse, PidGains, RootLocus};
use cpm::core::model;
use cpm_sim::CmpConfig;

fn main() {
    // 1. Identify the plant gain a in P(t+1) = P(t) + a·d(t) by running
    //    the PARSEC suite (minus bodytrack) under white-noise DVFS.
    let cmp = CmpConfig::paper_default();
    let a = model::identify_gain_paper(&cmp, 42, 40);
    println!("identified plant gain a = {a:.3}   (paper: 0.79)");

    // 2. Validate the model on the held-out benchmark (Fig. 5).
    let v = model::validate_model(&cmp, a, 7, 100);
    println!(
        "one-step prediction error on bodytrack: {:.2} %\n",
        v.mean_relative_error * 100.0
    );

    // 3. The paper's PID design point, in the z-domain.
    let gains = PidGains::paper();
    let plant = island_plant(a);
    let controller = gains.transfer_function();
    println!("plant     P(z) = {plant}");
    println!("controller C(z) = {controller}");
    let cl = closed_loop(gains, a);
    println!("closed loop Y(z) = {cl}\n");

    // 4. Pole placement check: every pole strictly inside the unit circle.
    for (k, p) in cl.poles().iter().enumerate() {
        println!("pole {}: {p}  (|z| = {:.4})", k + 1, p.norm());
    }
    println!("stable: {}", cl.is_stable());

    // 5. Robustness, three independent ways (paper: stable for 0 < g < 2.1).
    let margin = analysis::gain_margin(gains, a, 1e-4);
    println!("pole-placement margin: stable for 0 < g < {margin:.3}");
    let open = island_plant(a).series(&gains.transfer_function());
    let fr = FrequencyResponse::sweep(&open, 1e-3, 20_000);
    if let (Some(gm), Some(pm)) = (fr.gain_margin(), fr.phase_margin()) {
        println!("Bode margins: gain {gm:.3}, phase {:.1}°", pm.to_degrees());
    }
    let locus = RootLocus::sweep(|g| closed_loop(gains, g * a), 0.1, 3.0, 400);
    if let Some(onset) = locus.instability_onset() {
        println!("root locus leaves the unit circle at g = {onset:.3}");
    }
    println!(
        "Jury criterion on the nominal loop: {:?}\n",
        jury_test(cl.denominator())
    );

    // 6. Step response metrics of the analytical loop.
    let m = analysis::closed_loop_step_metrics(&cl, 80, 0.02);
    println!(
        "unit step: overshoot {:.1} % of step, settling {:?} invocations, steady-state error {:.5}",
        m.overshoot * 100.0,
        m.settling_steps,
        m.steady_state_error
    );
    println!("(the D term damps what the I term would otherwise ring: try PidGains::pi(0.4, 0.4))");
}
