//! QoS-tiered power provisioning: latency-critical islands keep their
//! power while best-effort islands brown out as the budget tightens —
//! the "QoS provisioning" extension §II-C names as feasible on the
//! decoupled GPM/PIC architecture.
//!
//! ```text
//! cargo run --release --example qos_tiers
//! ```

use cpm::core::coordinator::PolicyKind;
use cpm::core::policies::qos::QosClass;
use cpm::prelude::*;
use cpm_units::IslandId;

fn main() {
    // Islands 1–2 are latency-critical; islands 3–4 are best-effort batch.
    let classes = vec![
        QosClass::CRITICAL,
        QosClass::CRITICAL,
        QosClass::BEST_EFFORT,
        QosClass::BEST_EFFORT,
    ];

    println!("island classes: [critical, critical, best-effort, best-effort]\n");
    println!("budget | critical islands (BIPS) | best-effort islands (BIPS)");
    println!("-------+-------------------------+---------------------------");

    let mut reference: Option<Vec<f64>> = None;
    for budget in [100.0, 80.0, 60.0, 45.0] {
        let cfg = ExperimentConfig::paper_default()
            .with_budget_percent(budget)
            .with_scheme(ManagementScheme::Cpm(PolicyKind::Qos(classes.clone())));
        let out = Coordinator::new(cfg)
            .expect("valid configuration")
            .run_for_gpm_intervals(30);
        let bips: Vec<f64> = (0..4)
            .map(|i| out.island_energy[i].bips().unwrap_or(0.0))
            .collect();
        if reference.is_none() {
            reference = Some(bips.clone());
        }
        let r = reference.as_ref().unwrap();
        let pct = |i: usize| 100.0 * bips[i] / r[i];
        println!(
            "{budget:>5.0}% | {:.2} ({:>3.0}%), {:.2} ({:>3.0}%)   | {:.2} ({:>3.0}%), {:.2} ({:>3.0}%)",
            bips[0],
            pct(0),
            bips[1],
            pct(1),
            bips[2],
            pct(2),
            bips[3],
            pct(3),
        );
        let _ = out.island_actual_percent_gpm(IslandId(0));
    }
    println!(
        "\nas the budget falls, the best-effort tier absorbs (almost) all of the cut\n\
         while the critical tier holds near its full-throughput reference"
    );
}
