//! Writing a custom GPM provisioning policy — the extension point the
//! paper's decoupled architecture exists for ("many other policies … are
//! also feasible using our approach", §II-C).
//!
//! This example implements an *energy-saver* policy: every island gets the
//! minimum power compatible with a floor on its own throughput (90 % of
//! its best observed BIPS); leftover budget stays unspent. It then wires
//! the policy into the lower-level building blocks (chip + GPM + PICs)
//! directly, without the [`Coordinator`] convenience wrapper.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use cpm::core::gpm::{GlobalPowerManager, IslandFeedback, IslandRange, ProvisioningPolicy};
use cpm::core::pic::{PerIslandController, PicSensor};
use cpm::prelude::*;
use cpm_control::PidGains;
use cpm_sim::Chip;
use cpm_units::{IslandId, Watts};
use cpm_workloads::WorkloadAssignment;

/// Keep each island within `1 - slack` of its best observed BIPS while
/// shaving every watt that isn't needed for that.
struct EnergySaver {
    slack: f64,
    best_bips: Vec<f64>,
}

impl EnergySaver {
    fn new(slack: f64) -> Self {
        Self {
            slack,
            best_bips: Vec::new(),
        }
    }
}

impl ProvisioningPolicy for EnergySaver {
    fn name(&self) -> &'static str {
        "energy-saver"
    }

    fn provision(&mut self, budget: Watts, feedback: &[IslandFeedback]) -> Vec<Watts> {
        if self.best_bips.len() != feedback.len() {
            self.best_bips = vec![0.0; feedback.len()];
        }
        feedback
            .iter()
            .zip(self.best_bips.iter_mut())
            .map(|(fb, best)| {
                *best = best.max(fb.bips);
                let target = *best * (1.0 - self.slack);
                // Simple proportional trim: if we are above the throughput
                // floor, shave 5 % of power; if below, restore 10 %.
                let p = fb.actual_power.value();
                let next = if fb.bips > target { p * 0.95 } else { p * 1.10 };
                Watts::new(next.min(budget.value()))
            })
            .collect()
    }
}

fn main() {
    let cmp = CmpConfig::paper_default();
    let assignment = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    let mut chip = Chip::new(cmp.clone(), &assignment);

    // Physical ranges per island for the GPM's invariants.
    let island_max = chip.max_power() / cmp.islands() as f64;
    let ranges = vec![
        IslandRange {
            floor: island_max * 0.15,
            ceiling: island_max,
        };
        cmp.islands()
    ];
    let budget = chip.max_power() * 0.9;
    let mut gpm = GlobalPowerManager::new(budget, Box::new(EnergySaver::new(0.10)), ranges);

    // One PIC per island, sensing true power for simplicity.
    let mut pics: Vec<PerIslandController> = (0..cmp.islands())
        .map(|i| {
            PerIslandController::new(
                IslandId(i),
                cmp.dvfs.clone(),
                island_max,
                PidGains::paper(),
                0.79,
                PicSensor::Oracle,
            )
        })
        .collect();

    let mut alloc = gpm.initial_allocation();
    let mut energy = 0.0;
    let mut instructions = 0.0;
    for round in 0..40 {
        for (pic, &a) in pics.iter_mut().zip(&alloc) {
            pic.set_target(a);
        }
        let mut feedback = Vec::new();
        let mut acc_power = vec![0.0; cmp.islands()];
        let mut acc_instr = vec![0.0; cmp.islands()];
        for _ in 0..cmp.pics_per_gpm() {
            let snap = chip.step_pic();
            for (i, isl) in snap.islands.iter().enumerate() {
                acc_power[i] += isl.power.value();
                acc_instr[i] += isl.instructions;
                energy += isl.power.value() * snap.dt.value();
                instructions += isl.instructions;
            }
            for (i, pic) in pics.iter_mut().enumerate() {
                let isl = &snap.islands[i];
                let idx = pic.invoke(isl.capacity_utilization, isl.power);
                chip.set_island_dvfs(IslandId(i), idx);
            }
        }
        for i in 0..cmp.islands() {
            feedback.push(IslandFeedback {
                island: IslandId(i),
                allocated: alloc[i],
                actual_power: Watts::new(acc_power[i] / cmp.pics_per_gpm() as f64),
                bips: acc_instr[i] / cmp.gpm_interval.value() / 1e9,
                utilization: cpm_units::Ratio::new(0.0),
                epi: None,
                peak_temperature: 0.0,
            });
        }
        alloc = gpm.provision(&feedback);
        if round % 10 == 9 {
            let total: f64 = alloc.iter().map(|w| w.value()).sum();
            println!(
                "round {:>2}: allocations {:?} W (Σ {:.1} W of {:.1} W budget)",
                round + 1,
                alloc
                    .iter()
                    .map(|w| (w.value() * 10.0).round() / 10.0)
                    .collect::<Vec<_>>(),
                total,
                budget.value()
            );
        }
    }
    println!(
        "\nenergy-saver policy: {:.1} J for {:.2e} instructions ({:.2} nJ/instr)",
        energy,
        instructions,
        energy / instructions * 1e9
    );
    println!("the GPM accepted a custom `ProvisioningPolicy` with no other code changes");
}
