//! Quickstart: cap an 8-core CMP at 80 % of its power requirement with the
//! paper's two-tier GPM + PIC architecture and inspect how well it tracks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpm::prelude::*;
use cpm_units::IslandId;

fn main() {
    // The paper's default experiment: 8 out-of-order cores in 4
    // voltage/frequency islands, PARSEC Mix-1 (one CPU-bound + one
    // memory-bound app per island), 80 % chip power budget, PID gains
    // (0.4, 0.4, 0.3), transducer-based power sensing.
    let config = ExperimentConfig::paper_default();
    let mut coordinator = Coordinator::new(config).expect("valid configuration");

    println!(
        "chip: required power {:.1} W, theoretical max {:.1} W, budget {:.1} W",
        coordinator.reference_power().value(),
        coordinator.chip().max_power().value(),
        coordinator.budget().value()
    );

    // Run 40 GPM intervals (200 ms of simulated time, 400 PIC invocations).
    let outcome = coordinator.run_for_gpm_intervals(40);

    let tracking = outcome.chip_tracking_error();
    println!(
        "\nchip power: mean {:.2} % of requirement (budget {:.1} %)",
        outcome.mean_chip_power_percent(),
        outcome.budget_percent()
    );
    println!(
        "tracking:   max overshoot {:.2} %, max undershoot {:.2} %, mean |error| {:.2} %",
        tracking.max_overshoot_percent,
        tracking.max_undershoot_percent,
        tracking.mean_abs_error_percent
    );

    println!("\nper-island tracking of the GPM allocations:");
    for i in 0..4 {
        let t = outcome.island_tracking_error(IslandId(i));
        let r2 = outcome.transducer_r2[i]
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  island {}: mean |error| {:.2} % of target, sensor fit R² = {}",
            i + 1,
            t.mean_abs_error_percent,
            r2
        );
    }

    println!(
        "\nthroughput: {:.2} BIPS over {:.0} ms of simulated execution",
        outcome.mean_bips(),
        outcome.measured_time.ms()
    );
}
