//! Flight-recorder walkthrough: record a thermal-aware run, catch a
//! thermal violation in the event log, and print the metrics report.
//!
//! A [`cpm::obs::Recorder`] handle threads through the whole control
//! stack — GPM, policy, PICs, and the die-temperature watchdog — and
//! captures every control decision with its *simulated* timestamp. The
//! companion [`cpm::obs::Registry`] accumulates run-level instruments
//! (invocation counts, tracking error, violation statistics).
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```

use cpm::core::coordinator::PolicyKind;
use cpm::core::policies::thermal::ThermalConstraints;
use cpm::obs::{event_to_jsonl, EventKind, Recorder, Registry};
use cpm::prelude::*;
use cpm::units::Celsius;

fn main() {
    // The Fig. 18 layout: SPEC roster on eight single-core islands under
    // the thermal-aware policy, with a deliberately tight budget so the
    // constraint tracker has something to do.
    let mut cfg = ExperimentConfig::paper_default().with_budget_percent(75.0);
    cfg.mix = Mix::Thermal;
    cfg.cmp = CmpConfig::with_topology(8, 1);
    cfg.scheme =
        ManagementScheme::Cpm(PolicyKind::Thermal(ThermalConstraints::paper_eight_island()));

    let mut coordinator = Coordinator::new(cfg).expect("valid config");

    // Attach the observability stack before running: a 64k-event ring
    // buffer and a fresh registry. A `Recorder::disabled()` handle would
    // make every record call a single branch — recording is opt-in.
    let recorder = Recorder::enabled(1 << 16);
    let registry = Registry::new();
    coordinator.set_registry(registry.clone());
    coordinator.set_recorder(recorder.clone());
    // Die-temperature watchdog: onsets above the threshold become
    // ThermalViolation events. 55 °C is intentionally low so this example
    // reliably captures one on the synthetic substrate.
    coordinator.attach_hotspot_tracker(Celsius::new(55.0));

    coordinator.run_for_gpm_intervals(40);

    let events = recorder.drain();
    println!(
        "captured {} events ({} dropped)\n",
        events.len(),
        recorder.dropped()
    );

    // Count each event kind the run produced.
    for kind in EventKind::ALL {
        let n = events.iter().filter(|e| e.kind() == kind).count();
        println!("  {:<20} {n}", kind.as_str());
    }

    // Pull the first thermal violation out of the log and show it as the
    // JSONL line the `experiments trace` exporter would write.
    let violation = events
        .iter()
        .find(|e| e.kind() == EventKind::ThermalViolation)
        .expect("the tight budget and low watchdog threshold force one");
    println!(
        "\nfirst thermal violation:\n  {}",
        event_to_jsonl(violation)
    );

    // The registry's one-page report: counters and gauges the coordinator
    // published at the end of the measurement.
    println!("\n{}", registry.snapshot().to_text());
}
