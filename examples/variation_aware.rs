//! The §IV-B scenario: intra-die process variation makes islands leak
//! differently; the variation-aware policy hunts each island's
//! energy-per-instruction optimum.
//!
//! ```text
//! cargo run --release --example variation_aware
//! ```

use cpm::core::coordinator::PolicyKind;
use cpm::power::variation::VariationMap;
use cpm::prelude::*;
use cpm_units::IslandId;

fn main() {
    // Islands 1–3 leak 1.2×/1.5×/2.0× relative to island 4 (§IV-B).
    let variation = VariationMap::paper_four_island();
    println!(
        "per-island leakage multipliers: {:?}\n",
        variation.multipliers()
    );

    let mut cfg = ExperimentConfig::paper_default();
    cfg.variation = Some(variation.clone());

    let perf = Coordinator::new(cfg.clone())
        .expect("valid configuration")
        .run_for_gpm_intervals(40);
    let var = Coordinator::new(cfg.with_scheme(ManagementScheme::Cpm(PolicyKind::Variation)))
        .expect("valid configuration")
        .run_for_gpm_intervals(40);

    println!("island  leak   perf-aware          variation-aware");
    println!("        mult   BIPS   W/BIPS       BIPS   W/BIPS");
    for i in 0..4 {
        let id = IslandId(i);
        let (bp, wp) = stats(&perf, i);
        let (bv, wv) = stats(&var, i);
        println!(
            "  {}     {:.1}x   {:.2}   {:.2}        {:.2}   {:.2}",
            i + 1,
            variation.multiplier(id),
            bp,
            wp,
            bv,
            wv
        );
    }

    let e_perf = perf
        .island_energy
        .iter()
        .map(|e| e.total_energy().value())
        .sum::<f64>();
    let e_var = var
        .island_energy
        .iter()
        .map(|e| e.total_energy().value())
        .sum::<f64>();
    println!(
        "\ntotal energy: performance-aware {:.2} J, variation-aware {:.2} J ({:+.1} %)",
        e_perf,
        e_var,
        (e_var / e_perf - 1.0) * 100.0
    );
    println!(
        "total throughput: {:.2} vs {:.2} BIPS ({:+.1} %)",
        perf.mean_bips(),
        var.mean_bips(),
        (var.mean_bips() / perf.mean_bips() - 1.0) * 100.0
    );
}

/// (BIPS, watts-per-BIPS) for one island of an outcome.
fn stats(outcome: &cpm::core::coordinator::Outcome, island: usize) -> (f64, f64) {
    let e = &outcome.island_energy[island];
    let bips = e.bips().unwrap_or(0.0);
    let power = e.average_power().map(|w| w.value()).unwrap_or(0.0);
    (bips, power / bips.max(1e-12))
}
