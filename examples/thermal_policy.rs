//! The §IV-A scenario: avoid hotspots by constraining how much power
//! physically adjacent islands may hold for consecutive intervals.
//!
//! Runs the SPEC roster (mesa/bzip2/gcc/sixtrack ×2) on eight single-core
//! islands twice — under the plain performance-aware policy and under the
//! thermal-aware wrapper — and compares peak temperature, constraint
//! violations, and the performance price of thermal safety.
//!
//! ```text
//! cargo run --release --example thermal_policy
//! ```

use cpm::core::coordinator::PolicyKind;
use cpm::core::policies::thermal::ThermalConstraints;
use cpm::prelude::*;

fn main() {
    let constraints = ThermalConstraints::paper_eight_island();
    println!(
        "constraints: adjacent pair ≤ {:.0} % of budget for {} consecutive GPM intervals,",
        constraints.pair_cap * 100.0,
        constraints.pair_streak
    );
    println!(
        "             single island ≤ {:.0} % for {} consecutive intervals\n",
        constraints.single_cap * 100.0,
        constraints.single_streak
    );

    let mut base_cfg = ExperimentConfig::paper_default();
    base_cfg.mix = Mix::Thermal;
    base_cfg.cmp = CmpConfig::with_topology(8, 1);

    // Performance-aware: maximizes throughput, ignores the floorplan.
    let perf = Coordinator::new(base_cfg.clone())
        .expect("valid configuration")
        .run_for_gpm_intervals(40);

    // Thermal-aware: same inner policy, wrapped with the constraints.
    let mut thermal_coord = Coordinator::new(
        base_cfg.with_scheme(ManagementScheme::Cpm(PolicyKind::Thermal(constraints))),
    )
    .expect("valid configuration");
    let thermal = thermal_coord.run_for_gpm_intervals(40);
    let stats = thermal_coord
        .thermal_stats()
        .expect("thermal policy active");

    println!(
        "performance-aware: {:.2} BIPS, peak die temperature {:.1} °C",
        perf.mean_bips(),
        perf.peak_temperature.max().unwrap_or(0.0)
    );
    println!(
        "thermal-aware:     {:.2} BIPS, peak die temperature {:.1} °C",
        thermal.mean_bips(),
        thermal.peak_temperature.max().unwrap_or(0.0)
    );
    println!(
        "\nthermal-aware constraint violations: {} of {} GPM intervals ({:.1} %)",
        stats.violated_intervals,
        stats.intervals,
        stats.violation_fraction() * 100.0
    );
    println!(
        "throughput cost of thermal safety: {:.2} %",
        (1.0 - thermal.mean_bips() / perf.mean_bips()) * 100.0
    );
}
