//! Rack-level power capping: the chip budget changes at runtime.
//!
//! Data-center power managers re-provision per-socket budgets as rack
//! conditions change (§I motivates CMP capping from exactly this setting).
//! This example steps the chip budget 90 % → 70 % → 85 % and shows the
//! two-tier controller re-acquiring each new cap within a GPM interval or
//! two.
//!
//! ```text
//! cargo run --release --example power_capping
//! ```

use cpm::prelude::*;
use cpm_units::Ratio;

fn main() {
    let config = ExperimentConfig::paper_default().with_budget_percent(90.0);
    let mut coordinator = Coordinator::new(config).expect("valid configuration");

    println!("phase 1: budget 90 % of chip requirement");
    let phase1 = coordinator.run_for_gpm_intervals(20);
    report("  90 %", &phase1);

    // The rack manager pulls this socket down to 70 %.
    coordinator.set_budget_fraction(Ratio::from_percent(70.0));
    println!("\nphase 2: budget dropped to 70 %");
    let phase2 = coordinator.run_for_gpm_intervals(20);
    report("  70 %", &phase2);

    // Emergency over; most of the budget returns.
    coordinator.set_budget_fraction(Ratio::from_percent(85.0));
    println!("\nphase 3: budget restored to 85 %");
    let phase3 = coordinator.run_for_gpm_intervals(20);
    report("  85 %", &phase3);

    println!(
        "\nthroughput across phases: {:.2} / {:.2} / {:.2} BIPS — \
         performance follows the power envelope, never the other way around",
        phase1.mean_bips(),
        phase2.mean_bips(),
        phase3.mean_bips()
    );
}

fn report(label: &str, outcome: &cpm::core::coordinator::Outcome) {
    let t = outcome.chip_tracking_error();
    println!(
        "{label}: mean chip power {:.2} % (target {:.1} %), max overshoot {:.2} %",
        outcome.mean_chip_power_percent(),
        outcome.budget_percent(),
        t.max_overshoot_percent
    );
}
