//! # CPM — Coordinated Power Management in Chip-Multiprocessors
//!
//! Façade crate re-exporting the whole workspace under one roof. This is a
//! from-scratch reproduction of *"CPM in CMPs: Coordinated Power Management
//! in Chip-Multiprocessors"* (Mishra, Srikantaiah, Kandemir, Das — SC 2010),
//! including the full simulation substrate the paper ran on.
//!
//! ## Quick start
//!
//! ```
//! use cpm::prelude::*;
//!
//! // An 8-core CMP with 4 two-core voltage/frequency islands running the
//! // paper's Mix-1 PARSEC workloads under an 80 % chip power budget.
//! let config = ExperimentConfig::paper_default();
//! let mut coordinator = Coordinator::new(config).expect("valid config");
//! let outcome = coordinator.run_for_gpm_intervals(20);
//!
//! // The two-tier controller tracks the chip budget closely.
//! let track = outcome.chip_tracking_error();
//! assert!(track.max_overshoot_percent < 10.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`units`] | `cpm-units` | typed quantities (Hz, V, W, J, s, °C) and ids |
//! | [`control`] | `cpm-control` | polynomials, z-domain TFs, PID, system ID |
//! | [`power`] | `cpm-power` | Wattch/HotLeakage-style power models, DVFS |
//! | [`thermal`] | `cpm-thermal` | RC thermal grid, hotspot tracking |
//! | [`workloads`] | `cpm-workloads` | PARSEC/SPEC profiles, phases, mixes |
//! | [`sim`] | `cpm-sim` | interval-accurate CMP simulator |
//! | [`core`] | `cpm-core` | GPM policies, PIC, MaxBIPS, coordinator |
//! | [`obs`] | `cpm-obs` | flight recorder, metrics registry, exporters |

pub use cpm_control as control;
pub use cpm_core as core;
pub use cpm_obs as obs;
pub use cpm_power as power;
pub use cpm_sim as sim;
pub use cpm_thermal as thermal;
pub use cpm_units as units;
pub use cpm_workloads as workloads;

/// One-stop imports for typical use.
pub mod prelude {
    pub use cpm_core::prelude::*;
    pub use cpm_units::prelude::*;
}
