//! Tier-1 determinism gate for the sharded chip step.
//!
//! The intra-chip shard path (`Chip::step_pic_into_on`) fans a large
//! chip's island segments across the work-stealing pool. Its contract is
//! the same one the experiment sweep pins: worker count is a throughput
//! knob, never a results knob. This gate steps one 1024-core, 16-wide
//! chip (64 islands) under pools of 1, 4, and 16 workers — the
//! `CPM_WORKERS` values CI exercises — plus the serial reference path,
//! and requires the trajectories to be byte-identical: every snapshot
//! field equal and every per-core power/temperature bit-equal.

use cpm_runtime::Pool;
use cpm_sim::{Chip, ChipSnapshot, CmpConfig};
use cpm_units::IslandId;
use cpm_workloads::{Mix, WorkloadAssignment};

const CORES: usize = 1024;
const WIDTH: usize = 16;
const STEPS: usize = 30;

fn kilocore_chip() -> Chip {
    // paper_mix caps out at 32 cores; tile Mix 3 across the big chip.
    let profiles: Vec<_> = WorkloadAssignment::paper_mix(Mix::Mix3, 32)
        .profiles()
        .iter()
        .cloned()
        .cycle()
        .take(CORES)
        .collect();
    let cfg = CmpConfig::with_topology(CORES, WIDTH);
    let assignment = WorkloadAssignment::new(profiles, WIDTH);
    Chip::new(cfg, &assignment)
}

/// Drives one chip for `STEPS` intervals on the given pool (serial
/// reference when `pool` is `None`), wandering the DVFS state so freezes
/// and per-island operating points differ across islands, and returns
/// every snapshot.
fn trajectory(pool: Option<&Pool>) -> Vec<ChipSnapshot> {
    let mut chip = kilocore_chip();
    let mut snap = ChipSnapshot::empty();
    let islands = CORES / WIDTH;
    let mut out = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        if step % 5 == 0 {
            chip.set_island_dvfs(IslandId((step * 13) % islands), (step * 3) % 8);
        }
        match pool {
            Some(p) => chip.step_pic_into_on(&mut snap, p),
            None => chip.step_pic_into(&mut snap),
        }
        out.push(snap.clone());
    }
    out
}

fn assert_bit_identical(label: &str, a: &[ChipSnapshot], b: &[ChipSnapshot]) {
    assert_eq!(a.len(), b.len());
    for (step, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{label}: snapshot diverged at step {step}");
        for (c, (p, q)) in x.core_powers.iter().zip(&y.core_powers).enumerate() {
            assert_eq!(
                p.value().to_bits(),
                q.value().to_bits(),
                "{label}: core {c} power bits at step {step}"
            );
        }
        for (c, (p, q)) in x.temperatures.iter().zip(&y.temperatures).enumerate() {
            assert_eq!(
                p.value().to_bits(),
                q.value().to_bits(),
                "{label}: core {c} temperature bits at step {step}"
            );
        }
        assert_eq!(
            x.memory_contention.to_bits(),
            y.memory_contention.to_bits(),
            "{label}: contention bits at step {step}"
        );
    }
}

#[test]
fn kilocore_trajectory_is_byte_identical_across_worker_counts() {
    let serial = trajectory(None);
    for workers in [1usize, 4, 16] {
        let pool = Pool::new(workers);
        let sharded = trajectory(Some(&pool));
        assert_bit_identical(&format!("workers={workers}"), &serial, &sharded);
    }
}
