//! End-to-end integration tests: the paper's headline claims, asserted
//! against full coordinated runs of the public API.

use cpm::core::coordinator::{run_with_baseline, PolicyKind};
use cpm::core::policies::thermal::ThermalConstraints;
use cpm::power::variation::VariationMap;
use cpm::prelude::*;
use cpm_units::Ratio;

#[test]
fn chip_budget_is_tracked_within_the_papers_band() {
    let out = Coordinator::new(ExperimentConfig::paper_default())
        .expect("valid")
        .run_for_gpm_intervals(40);
    let t = out.chip_tracking_error();
    // Paper Fig. 10: overshoot/undershoot mostly within 4 %; we allow a
    // small slack for the synthetic substrate.
    assert!(t.max_overshoot_percent < 6.0, "overshoot {t:?}");
    assert!(
        (out.mean_chip_power_percent() - out.budget_percent()).abs() < 3.0,
        "mean {} vs budget {}",
        out.mean_chip_power_percent(),
        out.budget_percent()
    );
}

#[test]
fn degradation_decreases_monotonically_with_budget() {
    // Fig. 12's shape.
    let mut prev = f64::INFINITY;
    for budget in [60.0, 80.0, 100.0] {
        let cfg = ExperimentConfig::paper_default().with_budget_percent(budget);
        let (m, b) = run_with_baseline(cfg, 20).expect("valid");
        let d = m.degradation_vs(&b);
        assert!(
            d < prev + 0.5,
            "degradation must fall with budget: {d} at {budget} (prev {prev})"
        );
        prev = d;
    }
    // And at a 100 % budget the cost of management is small.
    assert!(prev < 5.0, "near-free at full budget, got {prev}");
}

#[test]
fn maxbips_always_stays_below_budget() {
    // Fig. 11's MaxBIPS half.
    for budget in [60.0, 80.0] {
        let cfg = ExperimentConfig::paper_default()
            .with_budget_percent(budget)
            .with_scheme(ManagementScheme::MaxBips);
        let out = Coordinator::new(cfg)
            .expect("valid")
            .run_for_gpm_intervals(20);
        assert!(
            out.mean_chip_power_percent() < budget,
            "MaxBIPS must undershoot: {} at {budget}",
            out.mean_chip_power_percent()
        );
    }
}

#[test]
fn cpm_beats_maxbips_at_tight_budgets() {
    // The closed loop converts more of a tight budget into throughput.
    let cfg = ExperimentConfig::paper_default().with_budget_percent(70.0);
    let (cpm, base) = run_with_baseline(cfg.clone(), 25).expect("valid");
    let mb = Coordinator::new(cfg.with_scheme(ManagementScheme::MaxBips))
        .expect("valid")
        .run_for_gpm_intervals(25);
    assert!(
        cpm.degradation_vs(&base) < mb.degradation_vs(&base) + 0.5,
        "CPM {} vs MaxBIPS {}",
        cpm.degradation_vs(&base),
        mb.degradation_vs(&base)
    );
}

#[test]
fn island_targets_always_sum_to_the_budget() {
    // Eq. 6's invariant, end to end, at every recorded instant.
    let out = Coordinator::new(ExperimentConfig::paper_default())
        .expect("valid")
        .run_for_gpm_intervals(15);
    for k in 0..out.island_target_percent[0].len() {
        let total: f64 = out
            .island_target_percent
            .iter()
            .map(|ts| ts.samples()[k].value)
            .sum();
        assert!(
            total <= out.budget_percent() + 0.5,
            "t={k}: Σtargets {total} exceeds budget"
        );
    }
}

#[test]
fn thermal_policy_never_completes_a_violation_streak() {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.mix = Mix::Thermal;
    cfg.cmp = CmpConfig::with_topology(8, 1);
    cfg.scheme =
        ManagementScheme::Cpm(PolicyKind::Thermal(ThermalConstraints::paper_eight_island()));
    let mut coord = Coordinator::new(cfg).expect("valid");
    coord.run_for_gpm_intervals(40);
    let stats = coord.thermal_stats().expect("stats");
    assert_eq!(
        stats.violated_intervals, 0,
        "no hotspots under the thermal policy (paper §IV-A)"
    );
}

#[test]
fn variation_policy_improves_efficiency_on_the_leakiest_island() {
    let variation = VariationMap::paper_four_island();
    let mut cfg = ExperimentConfig::paper_default();
    cfg.variation = Some(variation);
    let perf = Coordinator::new(cfg.clone())
        .expect("valid")
        .run_for_gpm_intervals(40);
    let var = Coordinator::new(cfg.with_scheme(ManagementScheme::Cpm(PolicyKind::Variation)))
        .expect("valid")
        .run_for_gpm_intervals(40);
    // Island 3 (index 2) leaks 2×: the greedy EPI search should lower its
    // watts-per-BIPS relative to the performance policy.
    let wpb = |o: &cpm::core::coordinator::Outcome, i: usize| {
        o.island_energy[i].average_power().unwrap().value() / o.island_energy[i].bips().unwrap()
    };
    assert!(
        wpb(&var, 2) < wpb(&perf, 2),
        "leakiest island efficiency: variation {} vs performance {}",
        wpb(&var, 2),
        wpb(&perf, 2)
    );
}

#[test]
fn runtime_budget_changes_are_reacquired() {
    let mut coord = Coordinator::new(ExperimentConfig::paper_default().with_budget_percent(90.0))
        .expect("valid");
    coord.run_for_gpm_intervals(10);
    coord.set_budget_fraction(Ratio::from_percent(65.0));
    let out = coord.run_for_gpm_intervals(15);
    assert!((out.budget_percent() - 65.0).abs() < 1e-9);
    // Skip the transition interval, then the new cap must hold.
    let tail = out.chip_power_percent_gpm();
    let late: Vec<f64> = tail.values().skip(3).collect();
    let mean = late.iter().sum::<f64>() / late.len() as f64;
    assert!((mean - 65.0).abs() < 4.0, "re-acquired mean {mean}");
}

#[test]
fn identical_configs_are_bit_for_bit_reproducible() {
    let a = Coordinator::new(ExperimentConfig::paper_default())
        .expect("valid")
        .run_for_gpm_intervals(8);
    let b = Coordinator::new(ExperimentConfig::paper_default())
        .expect("valid")
        .run_for_gpm_intervals(8);
    assert_eq!(a.total_instructions, b.total_instructions);
    let av: Vec<f64> = a.chip_power_percent.values().collect();
    let bv: Vec<f64> = b.chip_power_percent.values().collect();
    assert_eq!(av, bv);
}

#[test]
fn scaling_to_32_cores_keeps_tracking_quality() {
    let cfg = ExperimentConfig::paper_default().with_mix(Mix::Mix3, 32, 4);
    let out = Coordinator::new(cfg)
        .expect("valid")
        .run_for_gpm_intervals(15);
    let t = out.chip_tracking_error();
    assert!(
        t.max_overshoot_percent < 8.0,
        "32-core overshoot {}",
        t.max_overshoot_percent
    );
    assert_eq!(out.island_actual_percent.len(), 8);
}

#[test]
fn oracle_and_transducer_sensing_agree_in_the_mean() {
    let mut t_cfg = ExperimentConfig::paper_default();
    t_cfg.sensor = SensorMode::Transducer;
    let mut o_cfg = ExperimentConfig::paper_default();
    o_cfg.sensor = SensorMode::Oracle;
    let t_out = Coordinator::new(t_cfg)
        .expect("valid")
        .run_for_gpm_intervals(20);
    let o_out = Coordinator::new(o_cfg)
        .expect("valid")
        .run_for_gpm_intervals(20);
    assert!(
        (t_out.mean_chip_power_percent() - o_out.mean_chip_power_percent()).abs() < 3.0,
        "transducer {} vs oracle {}",
        t_out.mean_chip_power_percent(),
        o_out.mean_chip_power_percent()
    );
}

#[test]
fn energy_policy_saves_power_and_holds_the_guarantee() {
    let cfg = ExperimentConfig::paper_default()
        .with_budget_percent(100.0)
        .with_scheme(ManagementScheme::Cpm(PolicyKind::Energy { guarantee: 0.9 }));
    let (energy, base) = run_with_baseline(cfg, 40).expect("valid");
    // Saves real power vs the unmanaged chip…
    assert!(
        energy.mean_chip_power_percent() < 97.0,
        "energy policy should shave power: {} %",
        energy.mean_chip_power_percent()
    );
    // …while keeping total throughput near the guarantee.
    let deg = energy.degradation_vs(&base);
    assert!(deg < 14.0, "guarantee band exceeded: {deg} %");
}

#[test]
fn qos_policy_protects_the_critical_tier() {
    use cpm::core::policies::qos::QosClass;
    let classes = vec![
        QosClass::CRITICAL,
        QosClass::CRITICAL,
        QosClass::BEST_EFFORT,
        QosClass::BEST_EFFORT,
    ];
    let full = Coordinator::new(
        ExperimentConfig::paper_default()
            .with_budget_percent(100.0)
            .with_scheme(ManagementScheme::Cpm(PolicyKind::Qos(classes.clone()))),
    )
    .expect("valid")
    .run_for_gpm_intervals(25);
    let tight = Coordinator::new(
        ExperimentConfig::paper_default()
            .with_budget_percent(60.0)
            .with_scheme(ManagementScheme::Cpm(PolicyKind::Qos(classes))),
    )
    .expect("valid")
    .run_for_gpm_intervals(25);
    let keep =
        |o: &cpm::core::coordinator::Outcome, f: &cpm::core::coordinator::Outcome, i: usize| {
            o.island_energy[i].bips().unwrap() / f.island_energy[i].bips().unwrap()
        };
    let critical = (keep(&tight, &full, 0) + keep(&tight, &full, 1)) / 2.0;
    let best_effort = (keep(&tight, &full, 2) + keep(&tight, &full, 3)) / 2.0;
    assert!(critical > 0.90, "critical tier kept {critical}");
    assert!(
        best_effort < critical - 0.25,
        "best-effort must absorb the cut: {best_effort} vs {critical}"
    );
}

#[test]
fn adaptive_gain_tracks_at_least_as_well_as_fixed() {
    let mut fixed_cfg = ExperimentConfig::paper_default();
    fixed_cfg.plant_gain = 0.4; // deliberately misidentified
    let mut adaptive_cfg = fixed_cfg.clone();
    adaptive_cfg.adaptive_gain = true;
    let fixed = Coordinator::new(fixed_cfg)
        .expect("valid")
        .run_for_gpm_intervals(30);
    let adaptive = Coordinator::new(adaptive_cfg)
        .expect("valid")
        .run_for_gpm_intervals(30);
    let e_fixed = fixed.chip_tracking_error().mean_abs_error_percent;
    let e_adaptive = adaptive.chip_tracking_error().mean_abs_error_percent;
    assert!(
        e_adaptive <= e_fixed + 0.5,
        "adaptation must not hurt: adaptive {e_adaptive} vs fixed {e_fixed}"
    );
}

#[test]
fn bandwidth_ceiling_shows_up_at_32_cores() {
    // With the 6.4 GB/s controller, the 32-core all-mix chip generates
    // measurable contention that an infinite-bandwidth twin does not see.
    let mut cfg = ExperimentConfig::paper_default().with_mix(Mix::Mix3, 32, 4);
    cfg.budget_fraction = cpm_units::Ratio::from_percent(100.0);
    let real = Coordinator::new(cfg.clone())
        .expect("valid")
        .run_for_gpm_intervals(10);
    cfg.cmp.memory_bandwidth = None;
    let ideal = Coordinator::new(cfg)
        .expect("valid")
        .run_for_gpm_intervals(10);
    assert!(
        real.total_instructions <= ideal.total_instructions,
        "a bandwidth ceiling can only cost instructions"
    );
}
