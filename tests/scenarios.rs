//! Tier-1 golden-trajectory gate for the fault-injection scenario suite.
//!
//! Every catalogue entry must (a) replay bit-identically, (b) reproduce
//! its committed golden under `goldens/`, and (c) pass its behavioral
//! checks — under a plain root-package `cargo test`, no CI required.
//! The committed goldens are generated with
//! `experiments scenarios --update-goldens` and must be refreshed (and
//! the behavioral change explained) whenever the control stack's
//! trajectory intentionally moves.

use std::path::Path;

use cpm_scenario::{differential_report, run_scenario, GoldenDoc, CATALOGUE};

/// `goldens/<stem>.golden` for a scenario name.
fn golden_path(name: &str) -> std::path::PathBuf {
    let stem: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("{stem}.golden"))
}

#[test]
fn every_scenario_reproduces_its_committed_golden() {
    for scenario in CATALOGUE {
        let path = golden_path(scenario.name);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "scenario {} has no committed golden at {} ({e}); generate it with \
                 `cargo run --release -p cpm-bench --bin experiments -- scenarios \
                 --update-goldens`",
                scenario.name,
                path.display()
            )
        });
        let golden = GoldenDoc::parse(&text)
            .unwrap_or_else(|e| panic!("corrupt golden {}: {e}", path.display()));
        let run = run_scenario(scenario).expect("scenario must run");
        if !golden.matches(&run.golden) {
            // Differential replay: distinguish nondeterminism from a
            // behavioral change before failing.
            let replay = run_scenario(scenario).expect("replay must run");
            panic!(
                "scenario {} diverged from its committed golden:\n{}",
                scenario.name,
                differential_report(&golden, &run.jsonl, &replay.jsonl)
            );
        }
    }
}

#[test]
fn every_scenario_passes_its_behavioral_checks() {
    for scenario in CATALOGUE {
        let run = run_scenario(scenario).expect("scenario must run");
        for check in &run.checks {
            assert!(
                check.passed,
                "scenario {} check {} failed: {}",
                scenario.name, check.name, check.detail
            );
        }
        assert!(
            run.events > 0,
            "scenario {} produced an empty trajectory",
            scenario.name
        );
    }
}

#[test]
fn replaying_every_scenario_is_byte_identical() {
    for scenario in CATALOGUE {
        let a = run_scenario(scenario).expect("first run");
        let b = run_scenario(scenario).expect("second run");
        assert_eq!(
            a.jsonl, b.jsonl,
            "scenario {} replay is not byte-identical",
            scenario.name
        );
        assert_eq!(a.digest, b.digest);
    }
}

#[test]
fn trajectories_are_identical_across_worker_counts() {
    // Serial reference: every scenario on the calling thread.
    let serial: Vec<(&str, String)> = CATALOGUE
        .iter()
        .map(|s| (s.name, run_scenario(s).expect("serial run").jsonl))
        .collect();
    // Fan the same catalogue out on a 4-worker pool; results reduce in
    // input order, and each trajectory must be byte-identical to the
    // serial one regardless of which worker produced it.
    let pool = cpm_runtime::Pool::new(4);
    let parallel = pool.parallel_map(CATALOGUE.to_vec(), |s| {
        run_scenario(&s).expect("parallel run").jsonl
    });
    for ((name, serial_jsonl), parallel_jsonl) in serial.iter().zip(&parallel) {
        assert_eq!(
            serial_jsonl, parallel_jsonl,
            "scenario {name} trajectory differs between 1-worker and 4-worker execution"
        );
    }
}

#[test]
fn a_perturbed_run_produces_a_divergence_report_naming_the_first_event() {
    // Golden from the committed catalogue entry…
    let scenario = cpm_scenario::find("stuck-knob@pid").expect("catalogue entry");
    let reference = run_scenario(scenario).expect("reference run");
    // …checked against a deliberately perturbed trajectory (one event
    // label rewritten — the smallest possible behavioral change).
    let perturbed =
        reference
            .jsonl
            .replacen("\"kind\": \"PicDecision\"", "\"kind\": \"PicDecisionX\"", 1);
    assert_ne!(
        reference.jsonl, perturbed,
        "perturbation must change the stream"
    );
    let report = differential_report(&reference.golden, &perturbed, &perturbed);
    assert!(
        report.contains("BEHAVIORAL-CHANGE"),
        "deterministic perturbation must be classified as behavioral change:\n{report}"
    );
    assert!(
        report.contains("First diverging event"),
        "report must name the first diverging event:\n{report}"
    );
    // The perturbed event is in block 0, so the anchor lines must show
    // the actual first event of the diverging block.
    assert!(
        report.contains("expected: {"),
        "missing expected anchor:\n{report}"
    );
    assert!(
        report.contains("actual:   {"),
        "missing actual anchor:\n{report}"
    );
}
