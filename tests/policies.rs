//! Per-policy integration tests through the full coordinator, on
//! configurations the headline end-to-end suite does not cover.

use cpm::core::coordinator::{run_with_baseline, PolicyKind};
use cpm::core::policies::qos::QosClass;
use cpm::prelude::*;
use cpm_units::{IslandId, Seconds};

#[test]
fn mix2_homogeneous_islands_run_end_to_end() {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.mix = Mix::Mix2;
    let out = Coordinator::new(cfg)
        .expect("valid")
        .run_for_gpm_intervals(20);
    // The M,M islands (1 and 3 in zero-based order) should end up at lower
    // operating points than the C,C islands (0 and 2).
    let c_level = (out.mean_island_dvfs(IslandId(0)) + out.mean_island_dvfs(IslandId(2))) / 2.0;
    let m_level = (out.mean_island_dvfs(IslandId(1)) + out.mean_island_dvfs(IslandId(3))) / 2.0;
    assert!(
        c_level > m_level + 0.3,
        "CPU-bound islands should run faster: C {c_level} vs M {m_level}"
    );
}

#[test]
fn sixteen_core_oracle_run_tracks() {
    let mut cfg = ExperimentConfig::paper_default().with_mix(Mix::Mix3, 16, 4);
    cfg.sensor = SensorMode::Oracle;
    let out = Coordinator::new(cfg)
        .expect("valid")
        .run_for_gpm_intervals(15);
    let mean = out.mean_chip_power_percent();
    assert!(
        (mean - out.budget_percent()).abs() < 0.08 * out.budget_percent(),
        "16-core oracle mean {mean} vs budget {}",
        out.budget_percent()
    );
}

#[test]
fn slow_pic_still_converges() {
    // (GPM, PIC) = (5 ms, 5 ms): one PIC invocation per GPM interval.
    let mut cfg = ExperimentConfig::paper_default();
    cfg.cmp.pic_interval = Seconds::from_ms(5.0);
    let out = Coordinator::new(cfg)
        .expect("valid")
        .run_for_gpm_intervals(40);
    assert_eq!(out.pics_per_gpm, 1);
    let mean = out.mean_chip_power_percent();
    assert!(
        (mean - out.budget_percent()).abs() < 0.12 * out.budget_percent(),
        "slow-PIC mean {mean}"
    );
}

#[test]
fn robustness_summary_is_within_paper_scale_bands() {
    let out = Coordinator::new(ExperimentConfig::paper_default())
        .expect("valid")
        .run_for_gpm_intervals(40);
    let r = out.robustness(0.05);
    // §IV quotes island overshoot within a few percent of target and
    // steady state within a handful of invocations; on the synthetic
    // substrate worst-case segment overshoot runs larger (phase spikes)
    // but must stay bounded, and the segment *means* must stay close.
    assert!(r.max_overshoot < 0.6, "worst overshoot {}", r.max_overshoot);
    assert!(
        r.max_steady_state_error < 0.30,
        "worst segment-mean error {}",
        r.max_steady_state_error
    );
}

#[test]
fn all_policy_kinds_construct_and_run() {
    let kinds: Vec<(PolicyKind, Mix, usize, usize)> = vec![
        (PolicyKind::Performance, Mix::Mix1, 8, 2),
        (PolicyKind::Variation, Mix::Mix1, 8, 2),
        (PolicyKind::Energy { guarantee: 0.85 }, Mix::Mix1, 8, 2),
        (
            PolicyKind::Qos(vec![QosClass::STANDARD; 4]),
            Mix::Mix1,
            8,
            2,
        ),
    ];
    for (kind, mix, cores, width) in kinds {
        let cfg = ExperimentConfig::paper_default()
            .with_mix(mix, cores, width)
            .with_scheme(ManagementScheme::Cpm(kind.clone()));
        let out = Coordinator::new(cfg)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"))
            .run_for_gpm_intervals(8);
        assert!(out.total_instructions > 0.0, "{kind:?} retired nothing");
        assert!(
            out.mean_chip_power_percent() <= 102.0,
            "{kind:?} exceeded the physical envelope"
        );
    }
}

#[test]
fn qos_class_count_mismatch_is_a_config_error() {
    let cfg = ExperimentConfig::paper_default().with_scheme(ManagementScheme::Cpm(
        PolicyKind::Qos(vec![
            QosClass::STANDARD;
            3 // 4 islands on the chip
        ]),
    ));
    assert!(Coordinator::new(cfg).is_err());
}

#[test]
fn thermal_policy_on_two_core_islands_also_holds() {
    // The thermal wrapper is not tied to single-core islands: run it on
    // the default 4×2 topology with linear adjacency.
    use cpm::core::policies::thermal::ThermalConstraints;
    let constraints = ThermalConstraints::linear(4, 0.45, 0.28);
    let mut coord = Coordinator::new(
        ExperimentConfig::paper_default()
            .with_scheme(ManagementScheme::Cpm(PolicyKind::Thermal(constraints))),
    )
    .expect("valid");
    coord.run_for_gpm_intervals(30);
    let stats = coord.thermal_stats().expect("stats");
    assert_eq!(stats.violated_intervals, 0);
}

#[test]
fn energy_guarantee_scales_with_the_parameter() {
    // A looser guarantee must save at least as much power as a tight one.
    let run = |g: f64| {
        let cfg = ExperimentConfig::paper_default()
            .with_budget_percent(100.0)
            .with_scheme(ManagementScheme::Cpm(PolicyKind::Energy { guarantee: g }));
        Coordinator::new(cfg)
            .expect("valid")
            .run_for_gpm_intervals(30)
            .mean_chip_power_percent()
    };
    let tight = run(0.95);
    let loose = run(0.80);
    assert!(
        loose <= tight + 1.0,
        "80 % guarantee ({loose}) should use no more power than 95 % ({tight})"
    );
}

#[test]
fn baseline_pairs_share_identical_phase_sequences() {
    // run_with_baseline's claim: same seeds → the baseline twin sees the
    // exact same workload. Check by comparing against a second baseline.
    let (_, b1) = run_with_baseline(ExperimentConfig::paper_default(), 6).expect("valid");
    let (_, b2) = run_with_baseline(ExperimentConfig::paper_default(), 6).expect("valid");
    assert_eq!(b1.total_instructions, b2.total_instructions);
}

#[test]
fn single_island_chip_runs_end_to_end() {
    // Degenerate topology: all 8 cores in one island — the GPM has nothing
    // to arbitrate, the single PIC does all the work.
    use cpm::workloads::WorkloadAssignment;
    let base = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    let cfg = ExperimentConfig::paper_default()
        .with_assignment(WorkloadAssignment::new(base.profiles().to_vec(), 8));
    let out = Coordinator::new(cfg)
        .expect("valid")
        .run_for_gpm_intervals(20);
    assert_eq!(out.island_actual_percent.len(), 1);
    let mean = out.mean_chip_power_percent();
    assert!(
        (mean - out.budget_percent()).abs() < 0.10 * out.budget_percent(),
        "single-island mean {mean} vs budget {}",
        out.budget_percent()
    );
}

#[test]
fn two_point_dvfs_table_still_caps() {
    // The coarsest possible actuator: only the 600 MHz and 2 GHz endpoints
    // exist, so the loop can merely duty-cycle between ~40 % and ~100 %
    // island power in slow sweeps (the PID + slew limit were designed for
    // the 8-point table). Exact tracking is not achievable — but the *cap*
    // guarantee must survive: the mean stays at or below the budget, and
    // the controller still modulates (it does not just pin an endpoint).
    use cpm::power::dvfs::DvfsTable;
    let mut cfg = ExperimentConfig::paper_default();
    cfg.cmp.dvfs = DvfsTable::pentium_m_envelope(2);
    let out = Coordinator::new(cfg)
        .expect("valid")
        .run_for_gpm_intervals(30);
    let mean = out.mean_chip_power_percent();
    assert!(
        mean <= out.budget_percent() + 2.0,
        "2-point table must still respect the cap: mean {mean} vs {}",
        out.budget_percent()
    );
    // Endpoint powers are ≈ 40 % (bottom) and ≈ 100 % (top): modulation
    // means the mean sits strictly between them.
    assert!(mean > 45.0, "controller pinned the bottom endpoint: {mean}");
}
