//! Tier-1 gate for decision provenance: a traced cell's event stream must
//! form a walkable cause tree — every `PicDecision` parents to its round's
//! `GpmRound` span, every `Actuation` parents to the decision (or round)
//! that caused it, and the `explain` renderer can reconstruct the chain
//! from the recorded events alone.

use cpm_bench::explain::{explain_events, ExplainOptions};
use cpm_bench::trace::{run_trace, TraceOptions};
use cpm_obs::{EventPayload, SpanId, SpanKind};

fn traced_cell() -> cpm_bench::trace::TraceArtifacts {
    run_trace(
        "pid@80",
        &TraceOptions {
            rounds: 16,
            ..TraceOptions::default()
        },
    )
    .expect("cell runs")
}

#[test]
fn every_decision_and_actuation_parents_into_the_cause_tree() {
    let artifacts = traced_cell();
    let mut rounds = 0usize;
    let mut decisions = 0usize;
    let mut actuations = 0usize;
    for e in &artifacts.events {
        match e.payload {
            EventPayload::GpmRound { span, round, .. } => {
                rounds += 1;
                let s = SpanId::decode(span).expect("round span decodes");
                assert_eq!(s.kind(), SpanKind::GpmRound);
                assert_eq!(s.round(), round);
                assert_eq!(s.parent(), None, "rounds are roots");
            }
            EventPayload::PicDecision {
                span,
                parent,
                round,
                step,
                island,
                ..
            } => {
                decisions += 1;
                let s = SpanId::decode(span).expect("decision span decodes");
                assert_eq!(s.kind(), SpanKind::PicDecision);
                assert_eq!(
                    (s.round(), s.island(), s.step()),
                    (round, Some(island), Some(step))
                );
                // The recorded parent is the enclosing round, and the
                // structural parent derived from coordinates agrees.
                assert_eq!(parent, SpanId::gpm_round(round).raw());
                assert_eq!(s.parent().map(|p| p.raw()), Some(parent));
            }
            EventPayload::Actuation {
                span,
                parent,
                island,
                ..
            } => {
                actuations += 1;
                let s = SpanId::decode(span).expect("actuation span decodes");
                assert_eq!(s.kind(), SpanKind::Actuation);
                assert_eq!(s.island(), Some(island));
                // Per-island schemes parent the move to the decision at
                // the same coordinates; chip-level schemes to the round.
                let decision = s.parent().expect("actuations are not roots");
                assert!(
                    parent == decision.raw() || parent == SpanId::gpm_round(s.round()).raw(),
                    "actuation parent {parent:#x} is neither decision nor round"
                );
            }
            _ => {}
        }
    }
    assert!(rounds >= 16, "one GpmRound per interval, got {rounds}");
    // 4 islands × 10 PIC steps × 16 rounds.
    assert_eq!(decisions, 4 * 10 * 16);
    assert_eq!(
        actuations, decisions,
        "every decision actuates exactly once"
    );
}

#[test]
fn explain_walks_the_recorded_chain_for_a_specific_decision() {
    let artifacts = traced_cell();
    // The acceptance example: round 14, island 2, from events alone.
    let text = explain_events(
        "pid@80",
        &artifacts.events,
        ExplainOptions {
            round: Some(14),
            island: Some(2),
        },
    )
    .expect("chain renders");
    for needle in [
        "== explain pid@80 round 14 ==",
        "GpmRound #14",
        "GpmAllocation island 2",
        "PicDecision step 0",
        "PicDecision step 9",
        "pid: p=",
        "Actuation span=actuation#",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // A healthy recorded chain carries no integrity flags.
    assert!(!text.contains("!! span mismatch"), "{text}");
    assert!(!text.contains("!! parent"), "{text}");
    // Renders are byte-identical across replays (the chain is a pure
    // function of the recorded stream).
    let again = traced_cell();
    let text2 = explain_events(
        "pid@80",
        &again.events,
        ExplainOptions {
            round: Some(14),
            island: Some(2),
        },
    )
    .expect("chain renders again");
    assert_eq!(text, text2);
}
