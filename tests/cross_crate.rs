//! Cross-crate integration: the substrate pieces composed outside the
//! coordinator — system identification against the simulator, PIC against
//! the chip, cache calibration feeding the core model.

use cpm::control::PidGains;
use cpm::core::model;
use cpm::core::pic::{PerIslandController, PicSensor};
use cpm::sim::{calibration, Chip, CmpConfig, CoreModel};
use cpm::workloads::{parsec, InputSet, Mix, WorkloadAssignment};
use cpm_units::{Hertz, IslandId, Seconds};

#[test]
fn identified_gain_keeps_the_paper_controller_stable() {
    // Close the design loop: identify a on the simulator, then verify the
    // paper's PID gains are stable for it AND for the whole guaranteed
    // perturbation band.
    let cmp = CmpConfig::paper_default();
    let a = model::identify_gain_paper(&cmp, 99, 30);
    assert!((0.4..1.2).contains(&a), "gain {a}");
    let margin = cpm::control::analysis::gain_margin(PidGains::paper(), a, 1e-3);
    assert!(margin > 1.5, "healthy robustness margin, got {margin}");
}

#[test]
fn pic_caps_a_real_simulated_island() {
    // A PIC driving the actual chip (not a test double): cap island 0 at
    // 60 % of its share while the rest run free.
    let cmp = CmpConfig::paper_default();
    let assignment = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    let mut chip = Chip::new(cmp.clone(), &assignment);
    let island_max = chip.max_power() / 4.0;
    let mut pic = PerIslandController::new(
        IslandId(0),
        cmp.dvfs.clone(),
        island_max,
        PidGains::paper(),
        0.79,
        PicSensor::Oracle,
    );
    let target = island_max * 0.55;
    pic.set_target(target);
    let mut tail = Vec::new();
    for k in 0..80 {
        let snap = chip.step_pic();
        let isl = &snap.islands[0];
        let idx = pic.invoke(isl.capacity_utilization, isl.power);
        chip.set_island_dvfs(IslandId(0), idx);
        if k >= 40 {
            tail.push(isl.power.value());
        }
    }
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        (mean - target.value()).abs() / target.value() < 0.10,
        "capped island mean {mean} vs target {target}"
    );
}

#[test]
fn calibrated_cache_rates_drive_the_core_model() {
    // The real cache simulator's measured rates plug into the CPI stack
    // and preserve the CPU/memory-bound contrast.
    let cache = CmpConfig::paper_default().cache;
    let cpu = parsec::blackscholes();
    let mem = parsec::canneal().with_input(InputSet::Native);
    let cpu_rates = calibration::calibrate(&cpu, &cache, 7);
    let mem_rates = calibration::calibrate(&mem, &cache, 7);

    let mut cpu_core = CoreModel::new(cpu, 1, 0).with_rates(cpu_rates.l1_mpki, cpu_rates.l2_mpki);
    let mut mem_core = CoreModel::new(mem, 1, 0).with_rates(mem_rates.l1_mpki, mem_rates.l2_mpki);

    let dt = Seconds::from_ms(0.5);
    let speedup = |core: &mut CoreModel| {
        let lo: f64 = (0..40)
            .map(|_| {
                core.step(Hertz::from_mhz(600.0), dt, Seconds::ZERO)
                    .instructions
            })
            .sum();
        let hi: f64 = (0..40)
            .map(|_| {
                core.step(Hertz::from_ghz(2.0), dt, Seconds::ZERO)
                    .instructions
            })
            .sum();
        hi / lo
    };
    let s_cpu = speedup(&mut cpu_core);
    let s_mem = speedup(&mut mem_core);
    assert!(
        s_cpu > s_mem + 0.3,
        "measured-rate cores keep the class split: cpu {s_cpu} vs mem {s_mem}"
    );
}

#[test]
fn transducer_calibrated_on_the_simulator_matches_fig6_quality() {
    let cmp = CmpConfig::paper_default();
    let assignment = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    let mut chip = Chip::new(cmp.clone(), &assignment);
    let mut tr = cpm::power::UtilizationPowerTransducer::new();
    // Warm, sweep levels, observe island 0.
    for _ in 0..200 {
        chip.step_pic();
    }
    for level in (0..cmp.dvfs.len()).rev() {
        for i in 0..4 {
            chip.set_island_dvfs(IslandId(i), level);
        }
        chip.step_pic();
        for _ in 0..3 {
            let snap = chip.step_pic();
            tr.observe(snap.islands[0].capacity_utilization, snap.islands[0].power);
        }
    }
    let fit = tr.fit().expect("calibrated");
    assert!(fit.r_squared > 0.90, "linear R² {}", fit.r_squared);
    assert!(fit.slope > 0.0, "power rises with capacity utilization");
    // The estimate is usable as a sensor: within ~15 % at mid-range.
    let snap = chip.step_pic();
    let sensed = tr.estimate_power(snap.islands[0].capacity_utilization);
    let actual = snap.islands[0].power;
    assert!(
        (sensed.value() - actual.value()).abs() / actual.value() < 0.20,
        "sensed {sensed} vs actual {actual}"
    );
}

#[test]
fn model_validation_is_accurate_for_the_identified_gain() {
    let cmp = CmpConfig::paper_default();
    let a = model::identify_gain_paper(&cmp, 3, 30);
    let v = model::validate_model(&cmp, a, 11, 60);
    assert!(
        v.mean_relative_error < 0.12,
        "Fig. 5 error {}",
        v.mean_relative_error
    );
}

#[test]
fn thermal_grid_reflects_island_throttling() {
    // Throttle half the chip; its cores must end up measurably cooler.
    let cmp = CmpConfig::paper_default();
    let assignment = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    let mut chip = Chip::new(cmp, &assignment);
    chip.set_island_dvfs(IslandId(0), 0);
    chip.set_island_dvfs(IslandId(1), 0);
    for _ in 0..600 {
        chip.step_pic();
    }
    let temps = chip.temperatures_deg();
    let cool: f64 = temps[..4].iter().sum::<f64>() / 4.0;
    let hot: f64 = temps[4..8].iter().sum::<f64>() / 4.0;
    assert!(
        hot > cool + 3.0,
        "full-speed half {hot} °C vs throttled half {cool} °C"
    );
}

#[test]
fn energy_accounting_matches_power_times_time() {
    let cmp = CmpConfig::paper_default();
    let assignment = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    let mut chip = Chip::new(cmp, &assignment);
    let mut acc = cpm::power::EnergyAccount::new();
    let mut direct = 0.0;
    for _ in 0..50 {
        let snap = chip.step_pic();
        acc.record_interval(snap.chip_power, snap.dt, snap.instructions);
        direct += snap.chip_power.value() * snap.dt.value();
    }
    assert!((acc.total_energy().value() - direct).abs() < 1e-9);
    assert!(acc.energy_per_instruction().unwrap() > cpm_units::Joules::ZERO);
}

#[test]
fn dvfs_overhead_is_visible_end_to_end() {
    // Churn one island's knob every interval; the throughput difference
    // against a steady twin must be at least the configured freeze cost.
    let cmp = CmpConfig::paper_default();
    let assignment = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    let mut steady = Chip::new(cmp.clone(), &assignment);
    let mut churn = Chip::new(cmp, &assignment);
    let mut i_steady = 0.0;
    let mut i_churn = 0.0;
    for k in 0..200 {
        i_steady += steady.step_pic().instructions;
        churn.set_island_dvfs(IslandId(0), 6 + (k % 2));
        i_churn += churn.step_pic().instructions;
    }
    assert!(i_churn < i_steady);
}
