//! Tier-1 gate for the invariant catalogue: a plain root-package
//! `cargo test` (no `--workspace`) fails if any rule fires un-waived
//! anywhere in the tree, or if a committed waiver has gone stale.
//! Hermetic: reads only files inside the repository.

use std::path::Path;

#[test]
fn workspace_is_clean_under_the_invariant_catalogue() {
    // The root package's manifest dir IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = cpm_lint::lint_workspace(root).expect("lint run must succeed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root {}?",
        report.files_scanned,
        root.display()
    );
    assert!(
        !report.is_failure(),
        "cpm-lint found problems:\n{}",
        report.render()
    );
}
