//! Tier-1 gate for the artifact schema tables: every `BENCH_*.json`
//! renderer must satisfy the same required-key check that CI applies
//! via `experiments check-schema`. Renderer and checker live in
//! different modules; this test keeps them from drifting apart — a key
//! added to a renderer without updating the table (or vice versa) fails
//! here, not in a post-merge CI surprise.

use std::collections::BTreeMap;
use std::time::Duration;

use cpm_bench::microbench::Measurement;
use cpm_bench::perf::{perf_json, PerfEntry, PerfReport};
use cpm_bench::scaling::{scaling_json, ScalingPoint, ScalingReport};
use cpm_bench::scenario::{run_scenario_suite, scenarios_json};
use cpm_bench::schema::{check_schema, ArtifactKind};
use cpm_bench::{sweep_json, ExperimentTiming, SweepOutcome};

fn assert_clean(kind: ArtifactKind, json: &str) {
    let problems = check_schema(kind, json);
    assert!(
        problems.is_empty(),
        "{} renderer violates its schema table:\n{}\nartifact:\n{json}",
        kind.name(),
        problems.join("\n")
    );
}

fn m(ns: f64) -> Measurement {
    Measurement {
        median_ns: ns,
        min_ns: ns,
        batch: 1,
    }
}

#[test]
fn scenarios_artifact_passes_its_schema_gate() {
    // A real (golden-free, update-mode) suite run through the real
    // renderer — the exact document `experiments scenarios` writes.
    let suite = run_scenario_suite(BTreeMap::new(), true).expect("suite runs");
    assert_clean(ArtifactKind::Scenarios, &scenarios_json(&suite));
    // Every per-scenario health report must satisfy the HEALTH_*.json
    // gate too — these are the exact documents the binary writes.
    for report in &suite.reports {
        assert_clean(ArtifactKind::Health, &report.health_json);
    }
}

#[test]
fn health_artifact_passes_its_schema_gate() {
    let policy = cpm_obs::SloPolicy::default();
    let report = cpm_obs::HealthReport::new("pid@80", &[], &[], &policy);
    assert_clean(ArtifactKind::Health, &report.to_json());
}

#[test]
fn experiments_artifact_passes_its_schema_gate() {
    let sweep = SweepOutcome {
        reports: vec![("table1", "report\n".into())],
        timings: vec![ExperimentTiming {
            id: "table1",
            seconds: 0.25,
        }],
        total_seconds: 0.3,
        stats: cpm_runtime::PoolStats {
            workers: 2,
            elapsed: Duration::from_millis(400),
            per_context: vec![
                cpm_runtime::WorkerSnapshot {
                    jobs: 3,
                    steals: 1,
                    busy: Duration::from_millis(200),
                };
                3
            ],
        },
        registry: cpm_obs::Registry::new(),
    };
    assert_clean(ArtifactKind::Experiments, &sweep_json(&sweep));
}

#[test]
fn perf_artifact_passes_its_schema_gate() {
    // Entry names mirror the real suite's target list (the schema table
    // requires each by name).
    let names = [
        "chip_step_8",
        "chip_step_32",
        "chip_step_1024",
        "chip_step_1024_sharded",
        "math_sin_lane",
        "math_exp_lane",
        "pid_step",
        "maxbips_choose",
        "thermal_step_32",
        "thermal_step_64",
        "thermal_step_128",
        "cache_access",
        "calibration",
    ];
    let report = PerfReport {
        entries: names
            .iter()
            .map(|n| PerfEntry {
                name: n,
                m: m(10.0),
            })
            .collect(),
        sweep_seconds: 0.2,
        quick: true,
    };
    assert_clean(ArtifactKind::Perf, &perf_json(&report));
}

#[test]
fn scaling_artifact_passes_its_schema_gate() {
    // The schema table pins the kilocore point (`"cores": 1024`).
    let points = [8usize, 1024]
        .iter()
        .map(|&cores| ScalingPoint {
            cores,
            islands_requested: 4,
            islands: 4,
            width: cores / 4,
            step: m(100.0),
            step_fraction: 0.5,
            pic_fraction: 0.3,
            gpm_fraction: 0.2,
            two_tier_decision: m(50.0),
            maxbips_decision: m(500.0),
        })
        .collect();
    let report = ScalingReport {
        points,
        quick: true,
        registry: cpm_obs::Registry::new(),
    };
    assert_clean(ArtifactKind::Scaling, &scaling_json(&report));
}

#[test]
fn schema_tables_reject_truncated_artifacts() {
    for kind in [
        ArtifactKind::Experiments,
        ArtifactKind::Perf,
        ArtifactKind::Scaling,
        ArtifactKind::Scenarios,
        ArtifactKind::Health,
    ] {
        assert!(
            !check_schema(kind, "{}").is_empty(),
            "{} gate passed an empty object",
            kind.name()
        );
    }
}
